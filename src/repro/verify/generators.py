"""Property-based circuit generation for the verification subsystem.

The seeded random-network builders that used to live inside
``tests/test_random_networks.py`` now have one canonical home here, so
both the test suite and the fuzzing oracle (:mod:`repro.verify.oracle`)
draw from the same families. Every builder is a pure function of a
``numpy.random.Generator``: the same seed always reproduces the same
circuit, which is what makes fuzz failures replayable from a one-line
report entry.

Two layers:

* Low-level builders (:func:`random_resistive_network`,
  :func:`random_rc_network`) return the circuit *plus* independently
  hand-built dense matrices (nodal ``G``/``C`` and rhs ``b``) so tests
  can cross-check the engine against reference linear algebra.
* Family builders (``FAMILIES``) wrap those — and add RLC ladders,
  diode clippers/meshes, MOSFET inverter chains and a BJT follower —
  into :class:`GeneratedCircuit` records carrying a suggested ``tstop``
  sized from the network's own time constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.components import DiodeModel, MosfetModel
from repro.circuit.sources import Dc, Exp, Pulse, Pwl, Sin

__all__ = [
    "FAMILIES",
    "GeneratedCircuit",
    "draw_circuit",
    "random_rc_network",
    "random_resistive_network",
    "random_stimulus",
]


@dataclass
class GeneratedCircuit:
    """One fuzz trial's circuit plus the metadata the oracle needs.

    Attributes:
        family: generator family name (key into :data:`FAMILIES`).
        circuit: the generated :class:`~repro.circuit.circuit.Circuit`.
        tstop: suggested transient window, sized from the network's own
            time constants so every run exercises real dynamics.
        linear: True when the network contains no nonlinear devices.
        seed: the seed that reproduces this circuit via
            :func:`draw_circuit` (filled in by the caller).
        reference: optional independently-built dense reference data
            (``g``/``c``/``b`` matrices for the linear families).
    """

    family: str
    circuit: Circuit
    tstop: float
    linear: bool = True
    seed: int | None = None
    reference: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return f"{self.family}[seed={self.seed}]"


# -- low-level builders (also the test-suite reference networks) ---------------


def random_resistive_network(rng, n_nodes):
    """Random connected resistor mesh with current-source excitations.

    Returns (circuit, conductance matrix G, rhs vector b) where the nodal
    equations are G v = b, built independently of the engine's stamps.
    """
    circuit = Circuit("random-resistive")
    g_matrix = np.zeros((n_nodes, n_nodes))
    rhs = np.zeros(n_nodes)

    def add_resistor(name, i, j, resistance):
        circuit.add_resistor(name, f"n{i}" if i >= 0 else "0",
                             f"n{j}" if j >= 0 else "0", resistance)
        g = 1.0 / resistance
        if i >= 0:
            g_matrix[i, i] += g
        if j >= 0:
            g_matrix[j, j] += g
        if i >= 0 and j >= 0:
            g_matrix[i, j] -= g
            g_matrix[j, i] -= g

    # spanning chain to ground guarantees connectivity and solvability
    add_resistor("Rg0", 0, -1, float(rng.uniform(10, 1e4)))
    for i in range(1, n_nodes):
        add_resistor(f"Rchain{i}", i, i - 1, float(rng.uniform(10, 1e4)))
    # random extra edges
    for k in range(n_nodes):
        i = int(rng.integers(0, n_nodes))
        j = int(rng.integers(-1, n_nodes))
        if i == j:
            continue
        add_resistor(f"Rx{k}", i, j, float(rng.uniform(10, 1e4)))
    # random current injections (SPICE convention: extracts from plus)
    for k in range(max(1, n_nodes // 2)):
        i = int(rng.integers(0, n_nodes))
        amps = float(rng.uniform(-1e-2, 1e-2))
        circuit.add_isource(f"I{k}", f"n{i}", "0", Dc(amps))
        rhs[i] -= amps
    return circuit, g_matrix, rhs


def random_rc_network(rng, n_nodes):
    """Random RC mesh: every node has a grounded cap, resistive coupling.

    Returns (circuit, G, C, b) for C dv/dt = -G v + b with a step at t=0.
    """
    circuit, g_matrix, _ = random_resistive_network(rng, n_nodes)
    # strip the current sources: replace with a step excitation
    step_circuit = Circuit("random-rc")
    for comp in circuit.components:
        if not comp.name.startswith("I"):
            step_circuit.add(comp)
    c_matrix = np.zeros((n_nodes, n_nodes))
    for i in range(n_nodes):
        cap = float(rng.uniform(0.1e-9, 2e-9))
        step_circuit.add_capacitor(f"C{i}", f"n{i}", "0", cap)
        c_matrix[i, i] += cap
    rhs = np.zeros(n_nodes)
    i_inj = int(rng.integers(0, n_nodes))
    amps = float(rng.uniform(1e-3, 5e-3))
    step_circuit.add_isource(
        "ISTEP", f"n{i_inj}", "0", Pulse(0.0, amps, delay=0.0, rise=1e-15, width=1.0)
    )
    rhs[i_inj] -= amps
    return step_circuit, g_matrix, c_matrix, rhs


def _rc_tau(g_matrix, c_matrix) -> float:
    """Slowest time constant of C dv/dt = -G v (for sizing tstop)."""
    a_matrix = -np.linalg.solve(c_matrix, g_matrix)
    return 1.0 / float(np.abs(np.linalg.eigvals(a_matrix)).min())


def random_stimulus(rng, low: float, high: float, t_window: float):
    """One source waveform with activity inside ``[0, t_window]``.

    Draws uniformly over the writable waveform types (Pulse / Sin / Exp /
    Pwl) so fuzz trials exercise mixed stimuli, not just steps.
    """
    kind = int(rng.integers(0, 4))
    if kind == 0:
        return Pulse(
            low,
            high,
            delay=float(rng.uniform(0.0, 0.2)) * t_window,
            rise=0.05 * t_window,
            fall=0.05 * t_window,
            width=float(rng.uniform(0.3, 0.6)) * t_window,
        )
    if kind == 1:
        cycles = float(rng.uniform(1.0, 3.0))
        return Sin(
            offset=0.5 * (low + high),
            amplitude=0.5 * (high - low),
            freq=cycles / t_window,
        )
    if kind == 2:
        return Exp(
            low,
            high,
            td1=0.0,
            tau1=float(rng.uniform(0.1, 0.3)) * t_window,
            td2=float(rng.uniform(0.4, 0.6)) * t_window,
            tau2=float(rng.uniform(0.1, 0.3)) * t_window,
        )
    span = high - low
    points = ((0.0, low),
              (0.25 * t_window, low + float(rng.uniform(0.5, 1.0)) * span),
              (0.55 * t_window, low + float(rng.uniform(0.0, 0.5)) * span),
              (0.9 * t_window, high))
    return Pwl(points)


# -- family builders -----------------------------------------------------------


def _gen_rc_mesh(rng) -> GeneratedCircuit:
    n_nodes = int(rng.integers(3, 7))
    circuit, g_matrix, c_matrix, rhs = random_rc_network(rng, n_nodes)
    tstop = min(3.0 * _rc_tau(g_matrix, c_matrix), 1.0)
    return GeneratedCircuit(
        family="rc-mesh",
        circuit=circuit,
        tstop=tstop,
        reference={"g": g_matrix, "c": c_matrix, "b": rhs},
    )


def _gen_rc_ladder(rng) -> GeneratedCircuit:
    """R-C low-pass ladder driven by a mixed-stimulus voltage source."""
    circuit = Circuit("rc-ladder")
    sections = int(rng.integers(2, 6))
    tau_total = 0.0
    prev = "in"
    for k in range(sections):
        res = float(rng.uniform(100.0, 5e3))
        cap = float(rng.uniform(0.1e-9, 1e-9))
        node = f"n{k}"
        circuit.add_resistor(f"R{k}", prev, node, res)
        circuit.add_capacitor(f"C{k}", node, "0", cap)
        tau_total += res * cap
        prev = node
    tstop = 6.0 * tau_total
    amplitude = float(rng.uniform(0.5, 3.0))
    circuit.add_vsource("VIN", "in", "0", random_stimulus(rng, 0.0, amplitude, tstop))
    return GeneratedCircuit(family="rc-ladder", circuit=circuit, tstop=tstop)


def _gen_rlc_ladder(rng) -> GeneratedCircuit:
    """Near-critically-damped series-RL / shunt-C ladder (oscillatory poles)."""
    circuit = Circuit("rlc-ladder")
    sections = int(rng.integers(2, 4))
    prev = "in"
    slowest = 0.0
    for k in range(sections):
        ind = float(rng.uniform(0.1e-6, 1e-6))
        cap = float(rng.uniform(0.1e-9, 1e-9))
        # R near sqrt(L/C) keeps the section damped enough that ringing
        # settles inside a short window (and the step controller stays sane)
        res = float(np.sqrt(ind / cap) * rng.uniform(0.8, 2.0))
        mid = f"m{k}"
        node = f"n{k}"
        circuit.add_resistor(f"R{k}", prev, mid, res)
        circuit.add_inductor(f"L{k}", mid, node, ind)
        circuit.add_capacitor(f"C{k}", node, "0", cap)
        slowest = max(slowest, float(np.sqrt(ind * cap)))
        prev = node
    tstop = 25.0 * slowest * sections
    circuit.add_vsource(
        "VIN", "in", "0",
        Pulse(0.0, float(rng.uniform(0.5, 2.0)), delay=0.05 * tstop,
              rise=0.02 * tstop, width=tstop),
    )
    return GeneratedCircuit(family="rlc-ladder", circuit=circuit, tstop=tstop)


def _gen_resistive_sin(rng) -> GeneratedCircuit:
    """Random resistive mesh driven by a sinusoidal current source."""
    n_nodes = int(rng.integers(3, 8))
    circuit, g_matrix, rhs = random_resistive_network(rng, n_nodes)
    freq = float(rng.uniform(1e5, 1e6))
    tstop = 2.0 / freq
    node = int(rng.integers(0, n_nodes))
    circuit.add_isource(
        "ISIN", f"n{node}", "0",
        Sin(offset=0.0, amplitude=float(rng.uniform(1e-3, 5e-3)), freq=freq),
    )
    return GeneratedCircuit(
        family="resistive-sin",
        circuit=circuit,
        tstop=tstop,
        reference={"g": g_matrix, "b": rhs},
    )


def _gen_diode_clipper(rng) -> GeneratedCircuit:
    """Series-R diode clipper with a capacitive load (classic nonlinearity)."""
    circuit = Circuit("diode-clipper")
    res = float(rng.uniform(500.0, 5e3))
    cap = float(rng.uniform(0.05e-9, 0.5e-9))
    tstop = 8.0 * res * cap
    amplitude = float(rng.uniform(1.5, 4.0))
    circuit.add_vsource(
        "VIN", "in", "0", random_stimulus(rng, -amplitude, amplitude, tstop)
    )
    circuit.add_resistor("RS", "in", "out", res)
    circuit.add_capacitor("CL", "out", "0", cap)
    model = DiodeModel(is_=float(rng.uniform(1e-15, 1e-13)), n=1.0)
    circuit.add_diode("DPOS", "out", "0", model)
    if rng.integers(0, 2):
        circuit.add_diode("DNEG", "0", "out", model)
    return GeneratedCircuit(
        family="diode-clipper", circuit=circuit, tstop=tstop, linear=False
    )


def _gen_diode_mesh(rng) -> GeneratedCircuit:
    """Random RC mesh with diodes grafted across random node pairs."""
    n_nodes = int(rng.integers(3, 6))
    circuit, g_matrix, c_matrix, _ = random_rc_network(rng, n_nodes)
    model = DiodeModel(is_=1e-14, n=float(rng.uniform(1.0, 2.0)))
    for k in range(int(rng.integers(1, 3))):
        anode = int(rng.integers(0, n_nodes))
        cathode = int(rng.integers(-1, n_nodes))
        if anode == cathode:
            cathode = -1
        circuit.add_diode(
            f"D{k}", f"n{anode}", f"n{cathode}" if cathode >= 0 else "0", model
        )
    tstop = min(3.0 * _rc_tau(g_matrix, c_matrix), 1.0)
    return GeneratedCircuit(
        family="diode-mesh", circuit=circuit, tstop=tstop, linear=False
    )


def _gen_mosfet_chain(rng) -> GeneratedCircuit:
    """Chain of resistor-load NMOS inverters with capacitive loads."""
    circuit = Circuit("mosfet-chain")
    stages = int(rng.integers(1, 4))
    vdd = float(rng.uniform(2.5, 5.0))
    circuit.add_vsource("VDD", "vdd", "0", Dc(vdd))
    model = MosfetModel(
        polarity="nmos",
        vto=float(rng.uniform(0.5, 0.9)),
        kp=float(rng.uniform(50e-6, 200e-6)),
        lambda_=float(rng.uniform(0.0, 0.05)),
    )
    tau = 0.0
    prev = "in"
    for k in range(stages):
        rload = float(rng.uniform(5e3, 20e3))
        cload = float(rng.uniform(10e-15, 100e-15))
        node = f"s{k}"
        circuit.add_resistor(f"RL{k}", "vdd", node, rload)
        circuit.add_mosfet(
            f"M{k}", node, prev, "0", "0", model,
            w=float(rng.uniform(2e-6, 10e-6)), l=1e-6,
        )
        circuit.add_capacitor(f"CL{k}", node, "0", cload)
        tau = max(tau, rload * cload)
        prev = node
    tstop = 40.0 * tau
    # Sinusoidal gate drive: sweeps every inverter through its switching
    # region with a smooth gate-charging current. (A pulse drive makes
    # i(VIN) a spike train riding the edges — a signal whose pointwise
    # comparison measures grid alignment, not solver agreement.)
    circuit.add_vsource(
        "VIN", "in", "0",
        Sin(offset=0.5 * vdd, amplitude=0.5 * vdd,
            freq=float(rng.uniform(1.0, 2.0)) / tstop),
    )
    return GeneratedCircuit(
        family="mosfet-chain", circuit=circuit, tstop=tstop, linear=False
    )


def _gen_bjt_follower(rng) -> GeneratedCircuit:
    """Emitter follower: robust BJT topology with a sinusoidal drive."""
    circuit = Circuit("bjt-follower")
    vcc = float(rng.uniform(5.0, 10.0))
    circuit.add_vsource("VCC", "vcc", "0", Dc(vcc))
    r_emitter = float(rng.uniform(1e3, 10e3))
    c_load = float(rng.uniform(0.1e-9, 1e-9))
    tstop = 10.0 * r_emitter * c_load
    bias = float(rng.uniform(0.4, 0.6)) * vcc
    circuit.add_vsource(
        "VIN", "b", "0",
        Sin(offset=bias, amplitude=float(rng.uniform(0.1, 0.5)),
            freq=float(rng.uniform(1.0, 2.0)) / tstop),
    )
    circuit.add_bjt("Q1", "vcc", "b", "e")
    circuit.add_resistor("RE", "e", "0", r_emitter)
    circuit.add_capacitor("CE", "e", "0", c_load)
    return GeneratedCircuit(
        family="bjt-follower", circuit=circuit, tstop=tstop, linear=False
    )


def _gen_bridged_rc_mesh(rng) -> GeneratedCircuit:
    """Weakly-bridged multi-block RC composite (the WTM target workload)."""
    from repro.circuits.multiblock import bridged_rc_blocks

    blocks = int(rng.integers(2, 4))
    rungs = int(rng.integers(2, 5))
    section_r = float(rng.uniform(500.0, 2e3))
    section_c = float(rng.uniform(0.5e-12, 2e-12))
    period = max(20e-9, 10.0 * rungs * section_r * section_c)
    circuit = bridged_rc_blocks(
        blocks=blocks,
        rungs=rungs,
        section_r=section_r,
        section_c=section_c,
        bridge_r=float(rng.uniform(1e5, 1e6)),
        bridge_c=float(rng.uniform(0.0, 2e-14)),
        amplitude=float(rng.uniform(0.5, 2.0)),
        period=period,
        stagger=float(rng.uniform(0.0, 0.2)) * period,
        # Soft edges relative to the network taus: sub-tau pulse corners
        # push the speculative wavepipe schemes past their lte rung.
        edge=0.05 * period,
    )
    return GeneratedCircuit(
        family="bridged-rc-mesh", circuit=circuit, tstop=2.0 * period
    )


def _gen_inverter_composite(rng) -> GeneratedCircuit:
    """Inverter-chain blocks with weak resistive inter-block couplings.

    Heavily loaded on purpose: see
    :func:`repro.circuits.multiblock.coupled_inverter_chains` for why
    steep sub-grid switching edges would turn every waveform comparison
    into an edge-timing-jitter measurement.
    """
    from repro.circuits.multiblock import coupled_inverter_chains

    blocks = int(rng.integers(2, 4))
    stages = int(rng.integers(2, 4))
    circuit = coupled_inverter_chains(
        blocks=blocks,
        stages=stages,
        vdd=float(rng.uniform(2.5, 3.5)),
        load_cap=float(rng.uniform(1e-13, 3e-13)),
        coupling_r=float(rng.uniform(2e4, 1e5)),
        coupling_c=float(rng.uniform(0.5e-14, 2e-14)),
        drive="sin",
    )
    tstop = (10.0 + 4.0 * blocks * stages) * 1e-9
    return GeneratedCircuit(
        family="inverter-composite", circuit=circuit, tstop=tstop, linear=False
    )


#: Family name -> builder(rng) -> GeneratedCircuit. Sorted iteration order
#: is part of the determinism contract (draw_circuit indexes into it).
FAMILIES = {
    "bjt-follower": _gen_bjt_follower,
    "bridged-rc-mesh": _gen_bridged_rc_mesh,
    "diode-clipper": _gen_diode_clipper,
    "diode-mesh": _gen_diode_mesh,
    "inverter-composite": _gen_inverter_composite,
    "mosfet-chain": _gen_mosfet_chain,
    "rc-ladder": _gen_rc_ladder,
    "rc-mesh": _gen_rc_mesh,
    "resistive-sin": _gen_resistive_sin,
    "rlc-ladder": _gen_rlc_ladder,
}


def draw_circuit(seed: int, families=None) -> GeneratedCircuit:
    """Build the circuit that *seed* deterministically maps to.

    Args:
        seed: any integer; same seed (and same *families* selection)
            always reproduces the same circuit.
        families: optional iterable of family names to restrict the draw
            (unknown names raise ``KeyError``).
    """
    names = sorted(families) if families is not None else sorted(FAMILIES)
    builders = [FAMILIES[name] for name in names]  # KeyError on unknowns
    rng = np.random.default_rng(seed)
    index = int(rng.integers(0, len(builders)))
    generated = builders[index](rng)
    generated.seed = seed
    return generated
