"""Differential oracle: prove scheme x executor x reuse equivalence.

The paper's central claim is that waveform pipelining parallelises a
transient *without* changing what any accepted point satisfies — unlike
relaxation methods, which trade exactness for parallelism. The oracle
machine-checks that claim: one circuit is simulated through the full
configuration lattice

    {sequential, backward, forward, combined}
      x {serial, thread} executors
      x {jacobian_reuse off, on}
      (+ chaos-scheduled variants of every scheme)

and every candidate's waveforms are aligned against the sequential
reuse-off reference on a common time grid. The result is a structured
:class:`EquivalenceReport` with per-signal worst deviations, a tolerance
ladder classification per configuration, and a single pass/fail verdict.

Reports are deliberately free of wall-clock data: two runs with the same
seed must produce byte-identical JSON (:meth:`EquivalenceReport.to_json`),
which is what makes fuzz results diffable and CI failures replayable.

:func:`run_verification` drives the oracle over freshly drawn circuits
from :mod:`repro.verify.generators` — the fuzzing loop behind
``python -m repro verify --trials N --seed S``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.wavepipe import SCHEMES, run_wavepipe
from repro.engine.transient import run_transient
from repro.errors import SimulationError
from repro.instrument.events import VERIFY_TRIAL
from repro.instrument.recorder import resolve_recorder
from repro.mna.compiler import CompiledCircuit, compile_circuit
from repro.parallel.executors import make_executor
from repro.verify.chaos import ChaosExecutor
from repro.verify.generators import FAMILIES, GeneratedCircuit, draw_circuit
from repro.waveform.waveform import compare, worst_deviation

#: Relative-deviation thresholds, tightest first. A configuration's
#: ``tier`` is the first rung its worst deviation fits under; ``beyond``
#: means it cleared no rung (and certainly fails any sane tolerance).
TOLERANCE_LADDER = (
    ("exact", 0.0),
    ("machine", 1e-12),
    ("tight", 1e-6),
    ("loose", 1e-3),
    ("lte", 2e-2),
)

#: Default pass/fail tolerance: the LTE rung — pipelining may legally
#: pick different accepted points, so interpolation differences up to
#: integration tolerance are expected; anything beyond is a real bug.
DEFAULT_TOLERANCE = 2e-2

#: Oracle runs cap the step at tstop / MIN_GRID_POINTS. Adaptive runs on
#: smooth stretches otherwise take steps so large that *linear
#: interpolation between accepted points* — not solver disagreement —
#: dominates the comparison, burying real deviations in grid noise.
MIN_GRID_POINTS = 128

#: Integration reltol the oracle tightens to (unless explicit options are
#: given): verification-grade accuracy keeps legal tolerance-scaled
#: drift between configurations far below :data:`DEFAULT_TOLERANCE`.
VERIFY_RELTOL = 1e-4


def classify_tier(max_relative: float) -> str:
    """Name of the tightest ladder rung *max_relative* fits under."""
    for name, level in TOLERANCE_LADDER:
        if max_relative <= level:
            return name
    return "beyond"


@dataclass(frozen=True)
class ConfigSpec:
    """One point of the configuration lattice.

    ``analysis`` is ``"sequential"`` or a WavePipe scheme name;
    ``executor`` is None for sequential runs; ``chaos_seed`` switches the
    run onto a :class:`~repro.verify.chaos.ChaosExecutor` wrapping the
    named executor.
    """

    analysis: str
    executor: str | None = None
    reuse: bool = False
    chaos_seed: int | None = None

    @property
    def label(self) -> str:
        reuse = "on" if self.reuse else "off"
        if self.analysis == "sequential":
            return f"sequential[reuse={reuse}]"
        chaos = f"+chaos{self.chaos_seed}" if self.chaos_seed is not None else ""
        return f"{self.analysis}/{self.executor}{chaos}[reuse={reuse}]"


def configuration_lattice(chaos: bool = True, schemes=None) -> list[ConfigSpec]:
    """The full lattice, reference (sequential, reuse off) first."""
    schemes = tuple(schemes) if schemes is not None else tuple(sorted(SCHEMES))
    unknown = set(schemes) - set(SCHEMES)
    if unknown:
        raise SimulationError(
            f"unknown WavePipe scheme(s) {sorted(unknown)}; expected among {sorted(SCHEMES)}"
        )
    configs = [
        ConfigSpec("sequential", reuse=False),
        ConfigSpec("sequential", reuse=True),
    ]
    for scheme in schemes:
        for executor in ("serial", "thread"):
            for reuse in (False, True):
                configs.append(ConfigSpec(scheme, executor, reuse))
    if chaos:
        for index, scheme in enumerate(schemes):
            configs.append(ConfigSpec(scheme, "serial", False, chaos_seed=index))
    return configs


@dataclass
class ConfigResult:
    """Deviation of one configuration against the reference run."""

    config: str
    accepted_points: int
    deviations: list[dict]
    worst_signal: str | None
    worst_relative: float
    worst_abs: float
    tier: str
    passed: bool

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "accepted_points": self.accepted_points,
            "deviations": self.deviations,
            "worst_signal": self.worst_signal,
            "worst_relative": self.worst_relative,
            "worst_abs": self.worst_abs,
            "tier": self.tier,
            "passed": self.passed,
        }


@dataclass
class EquivalenceReport:
    """Full lattice verdict for one circuit.

    Contains no wall-clock or host-dependent data: same circuit + same
    seed => byte-identical :meth:`to_json` output, on any rerun.
    """

    circuit: str
    family: str | None
    seed: int | None
    tstop: float
    threads: int
    tolerance: float
    reference: str
    reference_points: int
    configs: list[ConfigResult] = field(default_factory=list)
    #: Set when the trial aborted before producing a verdict (solver
    #: blow-up, singular matrix...). An errored trial is a failed trial.
    error: str | None = None

    @property
    def passed(self) -> bool:
        return self.error is None and all(result.passed for result in self.configs)

    @property
    def failures(self) -> list[ConfigResult]:
        return [result for result in self.configs if not result.passed]

    @property
    def worst(self) -> ConfigResult | None:
        if not self.configs:
            return None
        return max(self.configs, key=lambda r: r.worst_relative)

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "family": self.family,
            "seed": self.seed,
            "tstop": self.tstop,
            "threads": self.threads,
            "tolerance": self.tolerance,
            "reference": self.reference,
            "reference_points": self.reference_points,
            "passed": self.passed,
            "error": self.error,
            "configs": [result.to_dict() for result in self.configs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def summary(self) -> str:
        if self.error is not None:
            return f"{self.circuit}: ERROR — {self.error}"
        worst = self.worst
        verdict = "PASS" if self.passed else f"FAIL({len(self.failures)} configs)"
        worst_text = (
            f"worst {worst.worst_relative:.3e} rel "
            f"[{worst.tier}] ({worst.config}: {worst.worst_signal})"
            if worst is not None
            else "no configs"
        )
        return (
            f"{self.circuit}: {verdict} — {len(self.configs)} configs, "
            f"{worst_text}, ref {self.reference_points} pts"
        )


def _chaos_executor_seed(circuit_seed: int | None, chaos_seed: int) -> int:
    """Mix the trial seed into the chaos stream (stable across reruns)."""
    base = 0 if circuit_seed is None else int(circuit_seed)
    return (base * 1_000_003 + chaos_seed) % (2**31)


def verify_circuit(
    circuit,
    tstop: float | None = None,
    threads: int = 3,
    tolerance: float = DEFAULT_TOLERANCE,
    chaos: bool = True,
    schemes=None,
    options=None,
    instrument=None,
) -> EquivalenceReport:
    """Run one circuit through the whole lattice and report equivalence.

    Args:
        circuit: a :class:`~repro.verify.generators.GeneratedCircuit`
            (carries its own ``tstop``), a plain ``Circuit``, or an
            already-compiled circuit.
        tstop: transient window; required unless *circuit* is generated.
        threads: worker count for the pipelined configurations.
        tolerance: pass/fail bound on the worst relative deviation.
        chaos: include chaos-scheduled serial variants of every scheme.
        schemes: optional subset of WavePipe schemes to verify.
        instrument: optional Recorder; the oracle books ``verify.*``
            counters and a ``verify_trial`` event per circuit into it.

    Returns:
        The structured :class:`EquivalenceReport` (never raises on a
        deviation failure — inspect ``report.passed``).
    """
    generated = circuit if isinstance(circuit, GeneratedCircuit) else None
    if generated is not None:
        circuit = generated.circuit
        tstop = generated.tstop if tstop is None else tstop
    if tstop is None or tstop <= 0:
        raise SimulationError("verify_circuit requires tstop > 0 (or a GeneratedCircuit)")
    compiled = (
        circuit
        if isinstance(circuit, CompiledCircuit)
        else compile_circuit(circuit, options)
    )
    base_options = options or compiled.options
    if options is None and base_options.reltol > VERIFY_RELTOL:
        # Scheme-vs-scheme deviation scales with the integration
        # tolerance (each run accumulates its own LTE-sized error), so
        # loose deck tolerances would blur real bugs into the pass band.
        base_options = base_options.replace(reltol=VERIFY_RELTOL)
    max_step = tstop / MIN_GRID_POINTS
    if base_options.max_step is None or base_options.max_step > max_step:
        base_options = base_options.replace(max_step=max_step)
    rec = resolve_recorder(instrument)
    configs = configuration_lattice(chaos=chaos, schemes=schemes)

    def run_config(spec: ConfigSpec):
        run_options = base_options.replace(jacobian_reuse=spec.reuse)
        if rec.enabled:
            # aggregate every run's engine counters (and the chaos
            # executor's) into the oracle's recorder
            run_options = run_options.replace(instrument=rec)
        if spec.analysis == "sequential":
            return run_transient(compiled, tstop, options=run_options)
        executor = spec.executor
        chaos_executor = None
        if spec.chaos_seed is not None:
            chaos_executor = ChaosExecutor(
                make_executor(spec.executor, threads),
                seed=_chaos_executor_seed(
                    generated.seed if generated is not None else None,
                    spec.chaos_seed,
                ),
            )
            executor = chaos_executor
        try:
            return run_wavepipe(
                compiled,
                tstop,
                scheme=spec.analysis,
                threads=threads,
                options=run_options,
                executor=executor,
            )
        finally:
            if chaos_executor is not None:
                chaos_executor.close()

    reference_spec, candidates = configs[0], configs[1:]
    reference = run_config(reference_spec)

    results: list[ConfigResult] = []
    for spec in candidates:
        candidate = run_config(spec)
        deviations = compare(reference.waveforms, candidate.waveforms)
        worst = worst_deviation(deviations)
        worst_rel = worst.max_relative if worst is not None else 0.0
        results.append(
            ConfigResult(
                config=spec.label,
                accepted_points=candidate.stats.accepted_points,
                deviations=[
                    {
                        "name": dev.name,
                        "max_abs": dev.max_abs,
                        "rms": dev.rms,
                        "max_relative": dev.max_relative,
                    }
                    for dev in deviations
                ],
                worst_signal=worst.name if worst is not None else None,
                worst_relative=worst_rel,
                worst_abs=worst.max_abs if worst is not None else 0.0,
                tier=classify_tier(worst_rel),
                passed=worst_rel <= tolerance,
            )
        )

    report = EquivalenceReport(
        circuit=generated.name if generated is not None else compiled.title,
        family=generated.family if generated is not None else None,
        seed=generated.seed if generated is not None else None,
        tstop=float(tstop),
        threads=threads,
        tolerance=tolerance,
        reference=reference_spec.label,
        reference_points=reference.stats.accepted_points,
        configs=results,
    )
    if rec.enabled:
        rec.count("verify.circuits")
        rec.count("verify.configs_run", len(configs))
        rec.count("verify.circuits_passed" if report.passed else "verify.circuits_failed")
        rec.count("verify.config_failures", len(report.failures))
        worst = report.worst
        rec.event(
            VERIFY_TRIAL,
            circuit=report.circuit,
            passed=report.passed,
            worst_relative=worst.worst_relative if worst is not None else 0.0,
        )
    return report


@dataclass
class FuzzReport:
    """Aggregate of one ``repro verify`` fuzzing campaign."""

    trials: int
    seed: int
    threads: int
    tolerance: float
    chaos: bool
    families: list[str]
    reports: list[EquivalenceReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.reports)

    @property
    def failures(self) -> list[EquivalenceReport]:
        return [report for report in self.reports if not report.passed]

    def to_dict(self) -> dict:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "threads": self.threads,
            "tolerance": self.tolerance,
            "chaos": self.chaos,
            "families": self.families,
            "passed": self.passed,
            "reports": [report.to_dict() for report in self.reports],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        configs = sum(len(report.configs) for report in self.reports)
        return (
            f"verify: {verdict} — {len(self.reports)}/{self.trials} trials, "
            f"{configs} candidate configs checked, "
            f"{len(self.failures)} trial failure(s), seed {self.seed}"
        )


def run_verification(
    trials: int = 10,
    seed: int = 0,
    threads: int = 3,
    tolerance: float = DEFAULT_TOLERANCE,
    chaos: bool = True,
    families=None,
    schemes=None,
    instrument=None,
    on_report=None,
) -> FuzzReport:
    """Fuzz the configuration lattice over *trials* fresh random circuits.

    Each trial draws its own circuit from a per-trial seed derived from
    *seed*, so the campaign is reproducible end-to-end: rerunning with
    the same arguments produces a byte-identical :meth:`FuzzReport.to_json`.

    Args:
        on_report: optional callback invoked with each trial's
            :class:`EquivalenceReport` as it completes (CLI progress).
    """
    if trials < 1:
        raise SimulationError("run_verification requires trials >= 1")
    rec = resolve_recorder(instrument)
    family_names = sorted(families) if families is not None else sorted(FAMILIES)
    master = np.random.default_rng(seed)
    report = FuzzReport(
        trials=trials,
        seed=seed,
        threads=threads,
        tolerance=tolerance,
        chaos=chaos,
        families=family_names,
    )
    for _ in range(trials):
        trial_seed = int(master.integers(0, 2**31))
        generated = draw_circuit(trial_seed, families=family_names)
        try:
            trial = verify_circuit(
                generated,
                threads=threads,
                tolerance=tolerance,
                chaos=chaos,
                schemes=schemes,
                instrument=instrument,
            )
        except Exception as exc:
            # A blowing-up trial must not abort the campaign: record it
            # as a failed trial so the remaining circuits still run and
            # the campaign (and CLI exit code) reports the failure.
            trial = EquivalenceReport(
                circuit=generated.name,
                family=generated.family,
                seed=generated.seed,
                tstop=float(generated.tstop),
                threads=threads,
                tolerance=tolerance,
                reference=configuration_lattice(chaos=False)[0].label,
                reference_points=0,
                error=f"{type(exc).__name__}: {exc}",
            )
            if rec.enabled:
                rec.count("verify.trial_errors")
        report.reports.append(trial)
        if on_report is not None:
            on_report(trial)
    if rec.enabled:
        rec.count("verify.trials", trials)
    return report
