"""Chaos scheduling: adversarial task ordering for the parallel runtime.

WavePipe's correctness argument rests on stage tasks being independent —
each solves its time point against a history snapshot taken *before* the
stage, so the order tasks actually run in (which a real thread pool does
not control) must not change any committed result.
:class:`ChaosExecutor` turns that assumption into a testable property: it
wraps any :class:`~repro.parallel.executors.StageExecutor` and, driven by
a seeded RNG, permutes the order tasks are handed to the inner runtime,
optionally injects delays (to scramble completion order on a real pool)
and faults (to exercise error propagation). Results always come back in
the original task order, exactly like the executors it wraps, so it can
be dropped into any pipeline run.

Determinism: every random decision (permutation, delay, fault) is drawn
at *scheduling* time on the calling thread, never inside a task, so the
same seed replays the same chaos even under a thread-pool inner executor.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Sequence

from repro.instrument.events import CHAOS_STAGE
from repro.parallel.executors import SerialExecutor, StageExecutor


class ChaosFault(RuntimeError):
    """Fault deliberately injected into a stage task by ChaosExecutor."""


class ChaosExecutor(StageExecutor):
    """Stage executor that deterministically scrambles task scheduling.

    Args:
        inner: the real runtime to delegate to (default: a fresh
            :class:`~repro.parallel.executors.SerialExecutor`).
        seed: seeds the private RNG behind every chaos decision.
        max_delay: per-task sleep upper bound in seconds (0 disables);
            useful with a thread-pool inner executor to force completion
            orders the pool would rarely produce on its own.
        fault_rate: probability in [0, 1] that a task raises
            :class:`ChaosFault` instead of running (0 disables). Used to
            prove stage-failure propagation, not in equivalence runs.
    """

    def __init__(
        self,
        inner: StageExecutor | None = None,
        seed: int = 0,
        max_delay: float = 0.0,
        fault_rate: float = 0.0,
    ):
        self.inner = inner if inner is not None else SerialExecutor()
        self.seed = seed
        self.max_delay = max_delay
        self.fault_rate = fault_rate
        self._rng = random.Random(seed)

    def run_stage(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        rec = self.recorder
        # the inner runtime carries the instrumentation, same as when the
        # pipeline engine drives it directly
        self.inner.recorder = rec
        order = list(range(len(tasks)))
        self._rng.shuffle(order)
        scrambled = [self._wrap(tasks[i]) for i in order]
        if rec is not None and rec.enabled:
            rec.count("chaos.stages")
            rec.count("chaos.tasks", len(tasks))
            rec.event(CHAOS_STAGE, permutation=order)
        permuted = self.inner.run_stage(scrambled)
        results: list[object] = [None] * len(tasks)
        for position, original in enumerate(order):
            results[original] = permuted[position]
        return results

    def _wrap(self, task: Callable[[], object]) -> Callable[[], object]:
        """Attach the chaos drawn for this task (decided now, not in-task)."""
        delay = self._rng.uniform(0.0, self.max_delay) if self.max_delay > 0 else 0.0
        fault = self.fault_rate > 0 and self._rng.random() < self.fault_rate
        if delay == 0.0 and not fault:
            return task
        rec = self.recorder

        def chaotic() -> object:
            if delay > 0.0:
                time.sleep(delay)
                if rec is not None and rec.enabled:
                    rec.count("chaos.delays_injected")
            if fault:
                if rec is not None and rec.enabled:
                    rec.count("chaos.faults_injected")
                raise ChaosFault("chaos-injected task fault")
            return task()

        return chaotic

    def close(self) -> None:
        self.inner.close()
