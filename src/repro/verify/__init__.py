"""Verification subsystem: differential oracle, circuit fuzzing, chaos.

Three pillars back the paper's "no loss of convergence or accuracy"
claim with machine-checked evidence:

* :mod:`repro.verify.oracle` — the differential oracle: run one circuit
  through the full scheme x executor x reuse configuration lattice and
  emit a structured, byte-reproducible :class:`EquivalenceReport`.
* :mod:`repro.verify.generators` — seeded property-based circuit
  generation (random RC/RLC ladders and meshes, diode/MOSFET/BJT
  networks, mixed source stimuli) so fuzz trials draw fresh circuits.
* :mod:`repro.verify.chaos` — :class:`ChaosExecutor`, a seeded
  adversarial scheduler proving the pipeline merge/commit logic is
  independent of task completion order.

CLI: ``python -m repro verify --trials N --seed S``.
"""

from repro.verify.chaos import ChaosExecutor, ChaosFault
from repro.verify.generators import (
    FAMILIES,
    GeneratedCircuit,
    draw_circuit,
    random_rc_network,
    random_resistive_network,
    random_stimulus,
)
from repro.verify.oracle import (
    DEFAULT_TOLERANCE,
    TOLERANCE_LADDER,
    ConfigResult,
    ConfigSpec,
    EquivalenceReport,
    FuzzReport,
    classify_tier,
    configuration_lattice,
    run_verification,
    verify_circuit,
)

__all__ = [
    "ChaosExecutor",
    "ChaosFault",
    "ConfigResult",
    "ConfigSpec",
    "DEFAULT_TOLERANCE",
    "EquivalenceReport",
    "FAMILIES",
    "FuzzReport",
    "GeneratedCircuit",
    "TOLERANCE_LADDER",
    "classify_tier",
    "configuration_lattice",
    "draw_circuit",
    "random_rc_network",
    "random_resistive_network",
    "random_stimulus",
    "run_verification",
    "verify_circuit",
]
