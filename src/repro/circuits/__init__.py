"""Benchmark circuit generators and the evaluation registry."""
