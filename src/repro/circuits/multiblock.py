"""Multi-block benchmark circuits for the WTM partition subsystem.

These are the loosely-coupled composites the Waveform Transmission Method
targets: several self-contained blocks (own supplies, own stimulus, own
fast internal dynamics) tied together by deliberately weak resistive or
capacitive bridges. The weak bridges are where
:func:`repro.partition.partitioner.partition_circuit` places its cuts,
and the near-unidirectional signal flow across them is what keeps the
Gauss-Seidel outer iteration count low.

The builders are deterministic pure functions of their arguments — the
registry wraps fixed configurations, and the seeded verify families in
:mod:`repro.verify.generators` randomise the parameters.
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse, Sin
from repro.circuits.digital import NMOS, PMOS, add_inverter


def bridged_rc_blocks(
    blocks: int = 3,
    rungs: int = 4,
    section_r: float = 1e3,
    section_c: float = 1e-12,
    bridge_r: float = 2.5e5,
    bridge_c: float = 1e-14,
    amplitude: float = 1.0,
    period: float = 20e-9,
    stagger: float = 2e-9,
    edge: float = 1e-9,
) -> Circuit:
    """Chain of RC-ladder blocks joined by weak R ∥ C bridges.

    Every block is an independently pulsed RC ladder (``rungs`` sections
    of *section_r*/*section_c*); block *k*'s last node couples to block
    *k+1*'s first node through *bridge_r* in parallel with *bridge_c* —
    three orders of magnitude weaker than the intra-block couplings, so
    the partitioner's cut lands there for any partition count up to
    *blocks*. Pulse delays stagger by *stagger* per block, giving every
    block its own activity instead of one source trickling through the
    bridges.
    """
    if blocks < 1 or rungs < 1:
        raise ValueError("bridged_rc_blocks needs blocks >= 1 and rungs >= 1")
    circuit = Circuit(f"bridged-rc-{blocks}x{rungs}")
    for b in range(blocks):
        drive = f"b{b}in"
        circuit.add_vsource(
            f"VIN{b}",
            drive,
            "0",
            Pulse(
                0.0,
                amplitude,
                delay=1e-9 + b * stagger,
                rise=edge,
                fall=edge,
                width=0.4 * period,
                period=period,
            ),
        )
        prev = drive
        for k in range(rungs):
            node = f"b{b}n{k}"
            circuit.add_resistor(f"R{b}_{k}", prev, node, section_r)
            circuit.add_capacitor(f"C{b}_{k}", node, "0", section_c)
            prev = node
        if b > 0:
            tap = f"b{b - 1}n{rungs - 1}"
            circuit.add_resistor(f"RBR{b}", tap, f"b{b}n0", bridge_r)
            if bridge_c > 0:
                circuit.add_capacitor(f"CBR{b}", tap, f"b{b}n0", bridge_c)
    return circuit


def mixed_rate_blocks(
    blocks: int = 6,
    rungs: int = 3,
    fast_period: float = 2e-9,
    slow_period: float = 160e-9,
    section_r: float = 1e3,
    section_c: float = 1e-12,
    bridge_r: float = 1e6,
    edge_frac: float = 0.1,
) -> Circuit:
    """Rate-disparate RC blocks: one fast pulsed block, the rest slow.

    Block 0 is driven by a pulse train at *fast_period*; every other
    block by a gentle sine at *slow_period* (80x slower by default). A
    monolithic adaptive solver must step at the fast block's rate for
    the **whole** circuit — its global step control cannot exempt the
    quiet blocks — so its work scales as (dense steps) x (total size).
    Partitioned with ``multirate=True``, only block 0 pays dense cost
    while the slow blocks stride over the same span in a handful of
    LTE-controlled steps, which is the circuit-axis latency win the
    waveform-relaxation literature builds on. This is the Table R13
    workload where WTM beats the monolithic virtual clock outright.

    Unlike :func:`bridged_rc_blocks` the slow blocks' boundary exports
    are smooth, so free-running block step controllers do not inject
    sample-placement jitter into the exchange and the outer iteration
    count stays at the topology's minimum.
    """
    if blocks < 2 or rungs < 1:
        raise ValueError("mixed_rate_blocks needs blocks >= 2 and rungs >= 1")
    edge = edge_frac * fast_period
    circuit = Circuit(f"mixed-rate-{blocks}x{rungs}")
    for b in range(blocks):
        drive = f"b{b}n0"
        if b == 0:
            circuit.add_vsource(
                "VIN0",
                drive,
                "0",
                Pulse(
                    0.0,
                    1.0,
                    delay=1e-9,
                    rise=edge,
                    fall=edge,
                    width=0.5 * fast_period - edge,
                    period=fast_period,
                ),
            )
        else:
            circuit.add_vsource(
                f"VIN{b}", drive, "0", Sin(0.5, 0.5, freq=1.0 / slow_period)
            )
        for k in range(rungs):
            circuit.add_resistor(
                f"R{b}_{k}", f"b{b}n{k}", f"b{b}n{k + 1}", section_r
            )
            circuit.add_capacitor(f"C{b}_{k}", f"b{b}n{k + 1}", "0", section_c)
    for b in range(1, blocks):
        circuit.add_resistor(
            f"RBR{b}", f"b{b - 1}n{rungs}", f"b{b}n{rungs}", bridge_r
        )
    return circuit


def coupled_inverter_chains(
    blocks: int = 3,
    stages: int = 4,
    vdd: float = 3.0,
    load_cap: float = 2e-13,
    coupling_r: float = 5e4,
    coupling_c: float = 1e-14,
    period: float = 20e-9,
    edge: float = 1e-9,
    drive: str = "pulse",
) -> Circuit:
    """CMOS inverter-chain blocks with weak resistive inter-block links.

    Each block is a *stages*-long inverter chain on its **own** supply
    node (``vdd<k>``) — a shared rail would weld every block into one
    partition through the MOSFET device cliques. Block 0 is pulse-driven;
    each later block's input hangs off the previous block's output
    through *coupling_r* with *coupling_c* of input loading, an RC weak
    link the partitioner can cut. Signal flow across the links is
    unidirectional (a MOS gate draws no DC current), the WTM best case.

    The default loads are deliberately heavy (*load_cap* = 200 fF) and
    the drive edges soft (1 ns): sub-grid switching edges are where both
    the sampled boundary exchange and pointwise waveform comparison
    degrade into measuring edge-timing jitter instead of solver
    agreement — the same reason the verify generators drive their MOSFET
    chains sinusoidally.

    *drive* selects the block-0 stimulus: ``"pulse"`` (default, the
    benchmark workload) or ``"sin"`` — a rail-to-rail sine at
    ``1/period``. The fuzz families use the sine form because a pulse
    makes ``i(VIN)`` a spike train riding the edges, whose pointwise
    comparison measures grid alignment rather than solver agreement.
    """
    if blocks < 1 or stages < 1:
        raise ValueError(
            "coupled_inverter_chains needs blocks >= 1 and stages >= 1"
        )
    if drive not in ("pulse", "sin"):
        raise ValueError(f"unknown drive {drive!r}: expected 'pulse' or 'sin'")
    circuit = Circuit(f"coupled-inverters-{blocks}x{stages}")
    for b in range(blocks):
        rail = f"vdd{b}"
        circuit.add_vsource(f"VDD{b}", rail, "0", vdd)
        drive_node = f"b{b}g0"
        if b == 0:
            if drive == "sin":
                stimulus = Sin(0.5 * vdd, 0.5 * vdd, freq=1.0 / period)
            else:
                stimulus = Pulse(
                    0.0,
                    vdd,
                    delay=1e-9,
                    rise=edge,
                    fall=edge,
                    width=0.4 * period,
                    period=period,
                )
            circuit.add_vsource("VIN", drive_node, "0", stimulus)
        else:
            tap = f"b{b - 1}g{stages}"
            circuit.add_resistor(f"RLINK{b}", tap, drive_node, coupling_r)
            circuit.add_capacitor(f"CLINK{b}", drive_node, "0", coupling_c)
        for s in range(stages):
            vin, vout = f"b{b}g{s}", f"b{b}g{s + 1}"
            add_inverter(
                circuit, f"{b}_{s}", vin, vout, vdd=rail, nmos=NMOS, pmos=PMOS
            )
            circuit.add_capacitor(f"CL{b}_{s}", vout, "0", load_cap)
    return circuit
