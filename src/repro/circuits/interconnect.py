"""Interconnect and power-delivery benchmark circuits (linear networks).

* :func:`rc_ladder` — the classic distributed-RC line; has a closed-form
  step response for the single-segment case and well-understood Elmore
  behaviour, so tests can check the engine analytically.
* :func:`rc_grid` — a power-grid mesh with switching current loads, the
  breakpoint-heavy workload where step ramping (and hence backward
  pipelining) dominates.
* :func:`rlc_line` — lossy RLC transmission-line ladder driven by a pulse;
  adds inductor branch unknowns and ringing dynamics.
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse


def rc_ladder(
    sections: int = 10,
    r_per_section: float = 100.0,
    c_per_section: float = 0.1e-12,
    vstep: float = 1.0,
    delay: float = 1e-10,
) -> Circuit:
    """Voltage-step-driven RC ladder with *sections* identical segments."""
    if sections < 1:
        raise ValueError("rc ladder needs at least one section")
    circuit = Circuit(f"rc-ladder-{sections}")
    circuit.add_vsource(
        "VIN", "n0", "0", Pulse(0.0, vstep, delay=delay, rise=1e-12, width=1.0)
    )
    for i in range(sections):
        circuit.add_resistor(f"R{i}", f"n{i}", f"n{i + 1}", r_per_section)
        circuit.add_capacitor(f"C{i}", f"n{i + 1}", "0", c_per_section)
    return circuit


def rc_grid(
    nx: int = 5,
    ny: int = 5,
    r_mesh: float = 2.0,
    c_node: float = 1e-12,
    vdd: float = 1.8,
    load_period: float = 8e-9,
) -> Circuit:
    """Power-grid mesh with pulsed current loads at two far corners.

    The supply pins at (0,0); loads switch with sub-ns edges, so the
    transient alternates between sharp ramps and quiet exponential
    settling — strongly consecutive-step-ratio-limited.
    """
    if nx < 2 or ny < 2:
        raise ValueError("rc grid needs at least a 2x2 mesh")
    circuit = Circuit(f"rc-grid-{nx}x{ny}")
    circuit.add_vsource("VDD", "p_0_0", "0", vdd)
    for i in range(nx):
        for j in range(ny):
            node = f"p_{i}_{j}"
            if i + 1 < nx:
                circuit.add_resistor(f"Rx{i}_{j}", node, f"p_{i + 1}_{j}", r_mesh)
            if j + 1 < ny:
                circuit.add_resistor(f"Ry{i}_{j}", node, f"p_{i}_{j + 1}", r_mesh)
            circuit.add_capacitor(f"C{i}_{j}", node, "0", c_node)
    circuit.add_isource(
        "ILOAD1",
        f"p_{nx - 1}_{ny - 1}",
        "0",
        Pulse(0.0, 20e-3, delay=1e-9, rise=0.2e-9, fall=0.2e-9, width=2e-9, period=load_period),
    )
    circuit.add_isource(
        "ILOAD2",
        f"p_{nx // 2}_{ny - 1}",
        "0",
        Pulse(0.0, 10e-3, delay=3e-9, rise=0.2e-9, fall=0.2e-9, width=1e-9, period=load_period),
    )
    return circuit


def rlc_line(
    sections: int = 8,
    r_per_section: float = 5.0,
    l_per_section: float = 1e-9,
    c_per_section: float = 0.2e-12,
    vstep: float = 1.0,
    period: float | None = 20e-9,
) -> Circuit:
    """Lossy RLC transmission-line ladder driven by a (repeating) pulse."""
    if sections < 1:
        raise ValueError("rlc line needs at least one section")
    circuit = Circuit(f"rlc-line-{sections}")
    circuit.add_vsource(
        "VIN",
        "n0",
        "0",
        Pulse(0.0, vstep, delay=0.5e-9, rise=0.1e-9, fall=0.1e-9, width=5e-9, period=period),
    )
    for i in range(sections):
        mid = f"n{i}#rl"
        circuit.add_resistor(f"R{i}", f"n{i}", mid, r_per_section)
        circuit.add_inductor(f"L{i}", mid, f"n{i + 1}", l_per_section)
        circuit.add_capacitor(f"C{i}", f"n{i + 1}", "0", c_per_section)
    # Matched-ish termination tames reflections at the far end.
    circuit.add_resistor("RTERM", f"n{sections}", "0", 70.0)
    return circuit
