"""Analog benchmark circuits: mixer, LC oscillator, rectifier.

These cover the "general analog ICs" half of the paper's claim:

* :func:`gilbert_mixer` — BJT double-balanced mixer (the classic RF
  analog block); exponential devices make Newton genuinely iterate, which
  is the regime where forward pipelining's pre-paid iterations matter.
* :func:`lc_oscillator` — cross-coupled NMOS pair with an LC tank;
  smooth quasi-sinusoidal waveforms, inductor branch currents.
* :func:`rectifier` — full-wave diode bridge with an RC smoothing load;
  stiff diode turn-on corners every half cycle drive repeated step
  collapse/ramp cycles.
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.circuit.components import BjtModel, DiodeModel, MosfetModel
from repro.circuit.sources import Pulse, Sin

NPN = BjtModel("npn-default", "npn", is_=1e-16, bf=100.0, br=1.0, vaf=50.0, cje=0.5e-12, cjc=0.3e-12, tf=10e-12)
RECT_DIODE = DiodeModel("rect-diode", is_=1e-12, n=1.05, cj0=5e-12, tt=5e-9)
OSC_NMOS = MosfetModel("osc-nmos", "nmos", vto=0.6, kp=300e-6, lambda_=0.02, cgso=0.3e-9, cgdo=0.3e-9)


def gilbert_mixer(
    vcc: float = 5.0,
    rf_freq: float = 10e6,
    lo_freq: float = 100e6,
    rf_amp: float = 0.05,
    lo_amp: float = 0.4,
    load_r: float = 1e3,
    tail_i: float = 2e-3,
) -> Circuit:
    """BJT double-balanced (Gilbert-cell) mixer.

    Structure: RF differential pair degenerates a tail current source;
    each RF collector feeds a cross-coupled LO quad whose collectors sum
    into two resistive loads. Output is differential ``v(outp) - v(outm)``
    containing the lo±rf products.
    """
    c = Circuit("gilbert-mixer")
    c.add_vsource("VCC", "vcc", "0", vcc)

    # Bias dividers for the LO quad and RF pair bases.
    c.add_resistor("RB1", "vcc", "vblo", 10e3)
    c.add_resistor("RB2", "vblo", "0", 20e3)  # vblo ~ 3.3 V
    c.add_resistor("RB3", "vcc", "vbrf", 20e3)
    c.add_resistor("RB4", "vbrf", "0", 15e3)  # vbrf ~ 2.1 V

    # Differential drive sources ride on the bias nodes.
    c.add_vsource("VLOP", "lop", "vblo", Sin(0.0, lo_amp / 2, lo_freq))
    c.add_vsource("VLOM", "lom", "vblo", Sin(0.0, -lo_amp / 2, lo_freq))
    c.add_vsource("VRFP", "rfp", "vbrf", Sin(0.0, rf_amp / 2, rf_freq))
    c.add_vsource("VRFM", "rfm", "vbrf", Sin(0.0, -rf_amp / 2, rf_freq))

    # Loads.
    c.add_resistor("RLP", "vcc", "outp", load_r)
    c.add_resistor("RLM", "vcc", "outm", load_r)
    c.add_capacitor("CLP", "outp", "0", 2e-12)
    c.add_capacitor("CLM", "outm", "0", 2e-12)

    # LO quad: collectors cross-coupled to the two outputs.
    c.add_bjt("Q1", "outp", "lop", "erf1", NPN)
    c.add_bjt("Q2", "outm", "lom", "erf1", NPN)
    c.add_bjt("Q3", "outm", "lop", "erf2", NPN)
    c.add_bjt("Q4", "outp", "lom", "erf2", NPN)

    # RF pair with emitter degeneration.
    c.add_bjt("Q5", "erf1", "rfp", "etail1", NPN)
    c.add_bjt("Q6", "erf2", "rfm", "etail2", NPN)
    c.add_resistor("RE1", "etail1", "tail", 50.0)
    c.add_resistor("RE2", "etail2", "tail", 50.0)
    c.add_isource("ITAIL", "tail", "0", tail_i)
    return c


def lc_oscillator(
    vdd: float = 1.8,
    l_tank: float = 5e-9,
    c_tank: float = 1e-12,
    r_loss: float = 5.0,
    tail_i: float = 2e-3,
) -> Circuit:
    """Cross-coupled NMOS LC oscillator (resonance ~2.25 GHz by default).

    Tank inductors from the supply to each output, cross-coupled pair
    providing -gm, tail current source. A brief current kick on one
    output starts the oscillation.
    """
    c = Circuit("lc-oscillator")
    c.add_vsource("VDD", "vdd", "0", vdd)
    for side, out in (("P", "outp"), ("M", "outm")):
        mid = f"l{side}#loss"
        c.add_inductor(f"L{side}", "vdd", mid, l_tank)
        c.add_resistor(f"RL{side}", mid, out, r_loss)
        c.add_capacitor(f"CT{side}", out, "0", c_tank)
    c.add_mosfet("M1", "outp", "outm", "tail", "0", OSC_NMOS, w=20e-6, l=0.5e-6)
    c.add_mosfet("M2", "outm", "outp", "tail", "0", OSC_NMOS, w=20e-6, l=0.5e-6)
    c.add_resistor("RTAIL", "tail", "0", 400.0)
    c.add_isource(
        "IKICK", "outp", "0", Pulse(0.0, 1e-3, delay=0.05e-9, rise=0.02e-9, width=0.1e-9)
    )
    return c


def rectifier(
    amplitude: float = 5.0,
    freq: float = 50e3,
    load_r: float = 2e3,
    load_c: float = 0.5e-6,
) -> Circuit:
    """Full-wave diode bridge rectifier with an RC smoothing load.

    The source floats between ``acp`` and ``acm``; the bridge rectifies
    onto ``dcp``/ground. A small series resistor models source impedance
    (and keeps the diode current loop well conditioned).
    """
    c = Circuit("bridge-rectifier")
    c.add_vsource("VAC", "acp", "acsrc", Sin(0.0, amplitude, freq))
    c.add_resistor("RSRC", "acsrc", "acm", 10.0)
    c.add_diode("D1", "acp", "dcp", RECT_DIODE)
    c.add_diode("D2", "acm", "dcp", RECT_DIODE)
    c.add_diode("D3", "0", "acp", RECT_DIODE)
    c.add_diode("D4", "0", "acm", RECT_DIODE)
    c.add_resistor("RLOAD", "dcp", "0", load_r)
    c.add_capacitor("CLOAD", "dcp", "0", load_c)
    return c
