"""Digital benchmark circuits: ring oscillators and inverter chains.

Both are the canonical "general digital IC" workloads a parallel-SPICE
evaluation runs: level-1 CMOS inverters with load capacitances, either
closed into an odd-stage ring (free-running oscillation, no breakpoints)
or driven as an open chain by a pulse train (breakpoint-rich, step-ramping
— backward pipelining's best case).
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.circuit.components import MosfetModel
from repro.circuit.sources import Pulse

#: Default 0.35um-flavoured level-1 model cards.
NMOS = MosfetModel("nmos-default", "nmos", vto=0.7, kp=200e-6, lambda_=0.05, cgso=0.2e-9, cgdo=0.2e-9)
PMOS = MosfetModel("pmos-default", "pmos", vto=0.7, kp=100e-6, lambda_=0.05, cgso=0.2e-9, cgdo=0.2e-9)


def add_inverter(
    circuit: Circuit,
    tag: str,
    vin: str,
    vout: str,
    vdd: str = "vdd",
    nmos: MosfetModel = NMOS,
    pmos: MosfetModel = PMOS,
    wn: float = 1e-6,
    wp: float = 2e-6,
    length: float = 1e-6,
) -> None:
    """Stamp one CMOS inverter (PMOS pull-up + NMOS pull-down) into *circuit*."""
    circuit.add_mosfet(f"MP{tag}", vout, vin, vdd, vdd, pmos, w=wp, l=length)
    circuit.add_mosfet(f"MN{tag}", vout, vin, "0", "0", nmos, w=wn, l=length)


def ring_oscillator(
    stages: int = 5,
    vdd: float = 3.0,
    load_cap: float = 10e-15,
    kick: float = 50e-6,
) -> Circuit:
    """Free-running CMOS ring oscillator with *stages* inverters (odd).

    A short current kick on node ``n0`` breaks the metastable DC symmetry
    so oscillation starts deterministically.
    """
    if stages % 2 == 0 or stages < 3:
        raise ValueError("ring oscillator needs an odd stage count >= 3")
    circuit = Circuit(f"ring-oscillator-{stages}")
    circuit.add_vsource("VDD", "vdd", "0", vdd)
    for i in range(stages):
        vin, vout = f"n{i}", f"n{(i + 1) % stages}"
        add_inverter(circuit, str(i), vin, vout)
        circuit.add_capacitor(f"CL{i}", vout, "0", load_cap)
    circuit.add_isource(
        "IKICK", "n0", "0", Pulse(0.0, kick, delay=0.1e-9, rise=0.05e-9, width=0.3e-9)
    )
    return circuit


def inverter_chain(
    stages: int = 8,
    vdd: float = 3.0,
    load_cap: float = 5e-15,
    period: float = 10e-9,
    pulse_width: float = 4e-9,
    edge: float = 0.1e-9,
) -> Circuit:
    """Pulse-driven inverter chain (breakpoint-rich digital workload)."""
    if stages < 1:
        raise ValueError("inverter chain needs at least one stage")
    circuit = Circuit(f"inverter-chain-{stages}")
    circuit.add_vsource("VDD", "vdd", "0", vdd)
    circuit.add_vsource(
        "VIN",
        "n0",
        "0",
        Pulse(0.0, vdd, delay=1e-9, rise=edge, fall=edge, width=pulse_width, period=period),
    )
    for i in range(stages):
        add_inverter(circuit, str(i), f"n{i}", f"n{i + 1}")
        circuit.add_capacitor(f"CL{i}", f"n{i + 1}", "0", load_cap)
    return circuit


def nand_stage(
    circuit: Circuit,
    tag: str,
    a: str,
    b: str,
    out: str,
    vdd: str = "vdd",
    wn: float = 2e-6,
    wp: float = 2e-6,
    length: float = 1e-6,
) -> None:
    """Stamp a 2-input CMOS NAND gate into *circuit*."""
    mid = f"{tag}#stack"
    circuit.add_mosfet(f"MPA{tag}", out, a, vdd, vdd, PMOS, w=wp, l=length)
    circuit.add_mosfet(f"MPB{tag}", out, b, vdd, vdd, PMOS, w=wp, l=length)
    circuit.add_mosfet(f"MNA{tag}", out, a, mid, "0", NMOS, w=wn, l=length)
    circuit.add_mosfet(f"MNB{tag}", mid, b, "0", "0", NMOS, w=wn, l=length)


def nand_chain(
    stages: int = 6,
    vdd: float = 3.0,
    load_cap: float = 5e-15,
    period: float = 12e-9,
) -> Circuit:
    """Chain of 2-input NANDs with one input tied high (inverting chain).

    Adds stacked devices and internal nodes — a denser digital netlist
    than the plain inverter chain.
    """
    circuit = Circuit(f"nand-chain-{stages}")
    circuit.add_vsource("VDD", "vdd", "0", vdd)
    circuit.add_vsource(
        "VIN",
        "n0",
        "0",
        Pulse(0.0, vdd, delay=1e-9, rise=0.1e-9, fall=0.1e-9, width=period / 2, period=period),
    )
    for i in range(stages):
        nand_stage(circuit, str(i), f"n{i}", "vdd", f"n{i + 1}")
        circuit.add_capacitor(f"CL{i}", f"n{i + 1}", "0", load_cap)
    return circuit
