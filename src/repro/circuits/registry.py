"""Benchmark registry: the reconstructed evaluation suite.

Each entry binds a circuit generator to the transient window, options and
signals-of-interest its table rows use, so tests, benches and examples
all simulate exactly the same workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.circuit.circuit import Circuit
from repro.circuits.analog import gilbert_mixer, lc_oscillator, rectifier
from repro.circuits.digital import inverter_chain, nand_chain, ring_oscillator
from repro.circuits.interconnect import rc_grid, rc_ladder, rlc_line
from repro.circuits.multiblock import (
    bridged_rc_blocks,
    coupled_inverter_chains,
    mixed_rate_blocks,
)
from repro.utils.options import SimOptions


@dataclass(frozen=True)
class Benchmark:
    """One evaluation workload.

    Attributes:
        name: registry key (also the table row label).
        kind: "digital", "analog" or "interconnect".
        factory: zero-argument circuit builder.
        tstop: transient window (s).
        tstep: suggested initial-step hint (s), optional.
        signals: traces compared for the accuracy table.
        options: simulator options for this workload.
        description: one-line summary for Table R1.
    """

    name: str
    kind: str
    factory: Callable[[], Circuit]
    tstop: float
    signals: tuple[str, ...]
    description: str
    tstep: float | None = None
    options: SimOptions = field(default_factory=SimOptions)

    def build(self) -> Circuit:
        return self.factory()


BENCHMARKS: dict[str, Benchmark] = {}


def _register(benchmark: Benchmark) -> None:
    BENCHMARKS[benchmark.name] = benchmark


_register(
    Benchmark(
        name="ring5",
        kind="digital",
        factory=lambda: ring_oscillator(stages=5),
        tstop=30e-9,
        signals=("v(n1)", "v(n3)"),
        description="5-stage CMOS ring oscillator (free-running)",
    )
)
_register(
    Benchmark(
        name="ring9",
        kind="digital",
        factory=lambda: ring_oscillator(stages=9),
        tstop=40e-9,
        signals=("v(n1)", "v(n5)"),
        description="9-stage CMOS ring oscillator (free-running)",
    )
)
_register(
    Benchmark(
        name="invchain8",
        kind="digital",
        factory=lambda: inverter_chain(stages=8),
        tstop=50e-9,
        signals=("v(n4)", "v(n8)"),
        description="8-stage inverter chain, 100 MHz pulse train",
    )
)
_register(
    Benchmark(
        name="nandchain6",
        kind="digital",
        factory=lambda: nand_chain(stages=6),
        tstop=50e-9,
        signals=("v(n3)", "v(n6)"),
        description="6-stage NAND chain (stacked devices), pulsed",
    )
)
_register(
    Benchmark(
        name="rcladder20",
        kind="interconnect",
        factory=lambda: rc_ladder(sections=20),
        tstop=2e-9 * 20,
        signals=("v(n10)", "v(n20)"),
        description="20-section RC interconnect ladder, voltage step",
    )
)
_register(
    Benchmark(
        name="powergrid6x6",
        kind="interconnect",
        factory=lambda: rc_grid(nx=6, ny=6),
        tstop=40e-9,
        signals=("v(p_5_5)", "v(p_3_5)"),
        description="6x6 RC power-grid mesh with switching loads",
    )
)
_register(
    Benchmark(
        name="rlcline8",
        kind="interconnect",
        factory=lambda: rlc_line(sections=8),
        tstop=40e-9,
        signals=("v(n4)", "v(n8)"),
        description="8-section lossy RLC transmission line, pulsed",
    )
)
_register(
    Benchmark(
        name="mixer",
        kind="analog",
        factory=gilbert_mixer,
        tstop=0.2e-6,
        signals=("v(outp)", "v(outm)"),
        description="BJT Gilbert-cell double-balanced mixer",
        options=SimOptions(max_step=1e-9),
    )
)
_register(
    Benchmark(
        name="lcosc",
        kind="analog",
        factory=lc_oscillator,
        tstop=8e-9,
        signals=("v(outp)", "v(outm)"),
        description="Cross-coupled NMOS LC oscillator (~2 GHz)",
    )
)
_register(
    Benchmark(
        name="rectifier",
        kind="analog",
        factory=rectifier,
        tstop=60e-6,
        signals=("v(dcp)",),
        description="Full-wave diode bridge rectifier with RC load",
    )
)
_register(
    Benchmark(
        name="rcblocks3",
        kind="interconnect",
        factory=lambda: bridged_rc_blocks(blocks=3, rungs=4),
        tstop=40e-9,
        signals=("v(b0n3)", "v(b1n3)", "v(b2n3)"),
        description="3 pulsed RC-ladder blocks joined by weak R||C bridges",
    )
)
_register(
    Benchmark(
        name="invblocks3",
        kind="digital",
        factory=lambda: coupled_inverter_chains(blocks=3, stages=4),
        tstop=30e-9,
        signals=("v(b0g4)", "v(b1g4)", "v(b2g4)"),
        description="3 CMOS inverter-chain blocks with weak resistive links",
    )
)
_register(
    Benchmark(
        name="rcblocks6",
        kind="interconnect",
        factory=lambda: bridged_rc_blocks(blocks=6, rungs=3),
        tstop=40e-9,
        signals=("v(b0n2)", "v(b3n2)", "v(b5n2)"),
        description="6 staggered pulsed RC-ladder blocks in a deep weak-bridge chain",
    )
)
_register(
    Benchmark(
        name="mixedrate6",
        kind="interconnect",
        factory=lambda: mixed_rate_blocks(blocks=6, rungs=3),
        tstop=40e-9,
        signals=("v(b0n3)", "v(b3n3)", "v(b5n3)"),
        description="1 fast-pulsed + 5 slow RC blocks, weak bridges (multirate)",
    )
)


def get_benchmark(name: str) -> Benchmark:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(sorted(BENCHMARKS))}"
        ) from None


def benchmark_names(kind: str | None = None) -> list[str]:
    """Registry keys, optionally filtered by circuit kind."""
    return [b.name for b in BENCHMARKS.values() if kind is None or b.kind == kind]
