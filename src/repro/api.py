"""Unified analysis entry point: :func:`simulate` and the request protocol.

Every analysis the package offers — sequential transient, WavePipe
pipelined transient, DC transfer sweep, small-signal AC, and parameter
sweep — historically had its own entry point with its own argument
spelling. :func:`simulate` fronts all five behind one signature with
harmonised keywords (``tstop``/``tstep``/``options``/``threads``/
``scheme``), normalising the call into an :class:`AnalysisRequest` and
wrapping the engine's native result in an :class:`AnalysisResult` that
exposes the shared surface (``waveforms``/``stats``/``metrics``) while
delegating everything analysis-specific to the raw result.

The historical entry points (``run_transient``, ``run_wavepipe``,
``dc_sweep``, ``ac_analysis``, ``sweep``) remain importable from
:mod:`repro` as thin deprecated shims over the same engines; new code
should call :func:`simulate`.

The sixth analysis, ``ensemble``, solves K parameter variants of one
topology in lockstep through the vectorized ensemble engine
(:mod:`repro.engine.ensemble`). It has a first-class request object,
:class:`EnsembleRequest`, and :func:`simulate` reaches it implicitly:
passing ``variants=[{...}, ...]`` or ``ensemble=K`` promotes a plain
transient call to an ensemble run returning an :class:`EnsembleResult`.

The seventh, ``wtm``, decomposes the circuit itself: the waveform
transmission method (:mod:`repro.partition`) cuts the network at its
weak couplings and iterates concurrent per-partition transients that
exchange boundary waveforms until fixed point. Passing ``partitions=N``
promotes a plain transient call the same way ``ensemble=`` does, and
``scheme=`` selects per-partition WavePipe pipelining inside each
partition solve.

Example::

    from repro import simulate

    res = simulate(circuit, analysis="transient", tstop=1e-6)
    par = simulate(circuit, analysis="wavepipe", tstop=1e-6,
                   scheme="combined", threads=4)
    dc = simulate(circuit, analysis="dc", source="V1",
                  values=np.linspace(0, 5, 51))
    ens = simulate(circuit, tstop=1e-6, ensemble=16, jitter=0.02, seed=5)
    print(ens.metrics.scheme, ens[0].waveforms.voltage("out"))
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.ac import ac_analysis as _ac_analysis
from repro.analysis.dc import dc_sweep as _dc_sweep
from repro.analysis.sweep import sweep as _sweep
from repro.core.wavepipe import run_wavepipe as _run_wavepipe
from repro.engine.ensemble import run_ensemble_transient as _run_ensemble_transient
from repro.engine.transient import run_transient as _run_transient
from repro.errors import SimulationError
from repro.partition.coordinator import run_wtm as _run_wtm
from repro.jobs.spec import apply_params, jitterable_params
from repro.utils.options import SimOptions

# Verification companions to simulate(): the differential oracle proving
# one circuit (or a fuzzing campaign of generated ones) equivalent across
# every scheme/executor/reuse configuration. Re-exported here so the
# "front door" module offers both halves of the API: run an analysis, or
# prove the analyses agree.
from repro.verify.oracle import (  # noqa: F401  (public re-exports)
    EquivalenceReport,
    FuzzReport,
    run_verification,
    verify_circuit,
)

#: Analyses understood by :func:`simulate`.
ANALYSES = ("transient", "wavepipe", "dc", "ac", "sweep", "ensemble", "wtm")

#: Extra keywords each analysis accepts beyond the shared ones.
_ANALYSIS_EXTRAS = {
    "transient": {"uic", "node_ics", "instrument"},
    "wtm": {
        "partitions",
        "manifest",
        "mode",
        "max_outer",
        "wtm_tol",
        "relax",
        "windows",
        "grid_points",
        "multirate",
        "strict",
        "instrument",
        "executor",
    },
    "ensemble": {
        "variants",
        "ensemble",
        "jitter",
        "seed",
        "uic",
        "node_ics",
        "instrument",
    },
    "wavepipe": {"uic", "node_ics", "instrument", "executor"},
    "dc": {"source", "values"},
    "ac": {"source", "freqs"},
    "sweep": {
        "parameter",
        "values",
        "metrics",
        "circuit_factory",
        "option_field",
        "skip_failures",
    },
}


@dataclass
class AnalysisRequest:
    """A fully-specified analysis: what to run, on what, and how.

    The shared keywords live as first-class fields; analysis-specific
    ones (``source``, ``values``, ``freqs``, ``parameter``, ``metrics``,
    ``uic``...) ride in ``extras``. Validation happens at construction,
    so a malformed request fails before any engine starts.
    """

    analysis: str
    circuit: object | None = None
    tstop: float | None = None
    tstep: float | None = None
    options: SimOptions | None = None
    threads: int = 2
    scheme: str | None = None
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.analysis not in ANALYSES:
            raise SimulationError(
                f"unknown analysis {self.analysis!r}; expected one of {ANALYSES}"
            )
        allowed = _ANALYSIS_EXTRAS[self.analysis]
        unknown = set(self.extras) - allowed
        if unknown:
            raise SimulationError(
                f"unexpected keyword(s) for {self.analysis!r} analysis: "
                f"{sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        if self.threads < 1:
            raise SimulationError("threads must be >= 1")
        if self.analysis in ("transient", "wavepipe", "sweep", "ensemble", "wtm"):
            if self.tstop is None or self.tstop <= 0:
                raise SimulationError(
                    f"{self.analysis!r} analysis requires tstop > 0"
                )
        if self.analysis == "wtm":
            if self.circuit is not None and not hasattr(self.circuit, "components"):
                raise SimulationError(
                    "'wtm' analysis requires a raw Circuit (the partitioner "
                    "cuts the component graph before compilation)"
                )
        if self.analysis == "ensemble":
            has_variants = self.extras.get("variants") is not None
            has_count = self.extras.get("ensemble") is not None
            if has_variants == has_count:
                raise SimulationError(
                    "'ensemble' analysis requires exactly one of "
                    "variants= or ensemble="
                )
        if self.analysis == "sweep":
            if self.circuit is None and self.extras.get("circuit_factory") is None:
                raise SimulationError(
                    "'sweep' analysis requires a circuit or a circuit_factory"
                )
            for name in ("parameter", "values", "metrics"):
                if self.extras.get(name) is None:
                    raise SimulationError(f"'sweep' analysis requires {name}=")
        else:
            if self.circuit is None:
                raise SimulationError(
                    f"{self.analysis!r} analysis requires a circuit"
                )
        if self.analysis == "dc":
            for name in ("source", "values"):
                if self.extras.get(name) is None:
                    raise SimulationError(f"'dc' analysis requires {name}=")
        if self.analysis == "ac":
            for name in ("source", "freqs"):
                if self.extras.get(name) is None:
                    raise SimulationError(f"'ac' analysis requires {name}=")

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dump of the request, minus the circuit.

        The circuit object itself is not JSON-representable (reattach it
        through ``from_dict(..., circuit=...)``); everything else —
        including :class:`SimOptions` and numpy-array extras — is
        converted to plain JSON types. Non-serializable extras (e.g. a
        ``circuit_factory`` callable or live metric functions) raise
        :class:`SimulationError` rather than producing a lossy dump.
        """
        return {
            "analysis": self.analysis,
            "tstop": self.tstop,
            "tstep": self.tstep,
            "options": None if self.options is None else self.options.to_dict(),
            "threads": self.threads,
            "scheme": self.scheme,
            "extras": {k: _json_safe(k, v) for k, v in self.extras.items()},
        }

    @classmethod
    def from_dict(cls, data: dict, circuit=None) -> "AnalysisRequest":
        """Rebuild a request from a :meth:`to_dict` dump.

        Validation runs exactly as on direct construction, so a request
        that requires a circuit still needs one passed here.
        """
        options = data.get("options")
        return cls(
            analysis=data["analysis"],
            circuit=circuit,
            tstop=data.get("tstop"),
            tstep=data.get("tstep"),
            options=None if options is None else SimOptions.from_dict(options),
            threads=data.get("threads", 2),
            scheme=data.get("scheme"),
            extras=dict(data.get("extras") or {}),
        )


def _json_safe(key: str, value):
    """Convert one extras value to plain JSON types (or fail loudly)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "tolist"):  # numpy array / scalar
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_json_safe(key, item) for item in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(key, v) for k, v in value.items()}
    raise SimulationError(
        f"extras[{key!r}] of type {type(value).__name__} is not JSON-serializable"
    )


@dataclass
class AnalysisResult:
    """Uniform wrapper over an analysis' native result.

    The shared surface — ``waveforms``, ``stats``, ``metrics`` — is
    available for every analysis that has it (None otherwise); anything
    else (``step_sizes``, ``transfer``, ``failures``...) is delegated to
    the wrapped ``raw`` result, so existing result-handling code keeps
    working against the wrapper unchanged.
    """

    analysis: str
    request: AnalysisRequest
    raw: object

    @property
    def waveforms(self):
        """Waveform-like view of the result (DC sweeps expose their
        ``curves``, swept against source level instead of time)."""
        wf = getattr(self.raw, "waveforms", None)
        if wf is not None:
            return wf
        return getattr(self.raw, "curves", None)

    @property
    def stats(self):
        return getattr(self.raw, "stats", None)

    @property
    def metrics(self):
        return getattr(self.raw, "metrics", None)

    def __getattr__(self, name: str):
        # Only reached when normal lookup fails: delegate to the raw result.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.raw, name)


@dataclass
class EnsembleRequest:
    """K parameter variants of one topology, solved in one lockstep run.

    The variant set is given either explicitly (``variants`` — a list of
    ``{component name: value}`` override dicts, one per variant) or as a
    jitter spec (``ensemble=K`` with ``jitter``/``seed``), in which case
    the K variant parameter sets are drawn exactly like
    :func:`repro.jobs.campaign.monte_carlo`: every perturbable component
    value is multiplied by an independent seeded lognormal factor with
    sigma ``jitter``, in sorted component-name order, so an ensemble run
    and a Monte Carlo campaign with equal seeds simulate the same
    circuits. Exactly one of the two spellings must be used.

    ``extras`` carries the transient-engine pass-throughs (``uic``,
    ``node_ics``, ``instrument``). The circuit must be a raw
    :class:`~repro.circuit.circuit.Circuit` (variants are rebuilt from
    it with per-variant parameter overrides).
    """

    circuit: object | None = None
    tstop: float | None = None
    tstep: float | None = None
    options: SimOptions | None = None
    variants: list | None = None
    ensemble: int | None = None
    jitter: float = 0.05
    seed: int = 0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.circuit is None:
            raise SimulationError("ensemble request requires a circuit")
        if not hasattr(self.circuit, "components"):
            raise SimulationError(
                "ensemble request requires a raw Circuit (variants are "
                "rebuilt with per-variant parameter overrides)"
            )
        if self.tstop is None or self.tstop <= 0:
            raise SimulationError("ensemble request requires tstop > 0")
        if (self.variants is None) == (self.ensemble is None):
            raise SimulationError(
                "exactly one of variants= or ensemble= is required"
            )
        if self.variants is not None:
            if not self.variants:
                raise SimulationError("variants must contain at least one entry")
            normalized = []
            for i, overrides in enumerate(self.variants):
                if not isinstance(overrides, dict):
                    raise SimulationError(
                        f"variants[{i}] must be a dict of component-name "
                        f"overrides, got {type(overrides).__name__}"
                    )
                normalized.append(
                    {str(name): float(value) for name, value in overrides.items()}
                )
            self.variants = normalized
        else:
            self.ensemble = int(self.ensemble)
            if self.ensemble < 1:
                raise SimulationError("ensemble= must be >= 1")
            if self.jitter < 0:
                raise SimulationError("jitter must be >= 0")
        allowed = {"uic", "node_ics", "instrument"}
        unknown = set(self.extras) - allowed
        if unknown:
            raise SimulationError(
                f"unexpected keyword(s) for ensemble request: "
                f"{sorted(unknown)}; allowed: {sorted(allowed)}"
            )

    def resolve_variants(self) -> list:
        """The per-variant parameter override dicts this request denotes.

        Explicit ``variants`` are returned as given (copied); a jitter
        spec draws them with :func:`numpy.random.default_rng`'s seeded
        lognormal over the circuit's sorted perturbable components,
        mirroring ``monte_carlo``'s draw order bit for bit.
        """
        if self.variants is not None:
            return [dict(overrides) for overrides in self.variants]
        nominal = jitterable_params(self.circuit)
        if not nominal:
            raise SimulationError(
                "circuit has no perturbable parameters to jitter; "
                "pass explicit variants= instead"
            )
        rng = np.random.default_rng(self.seed)
        names = sorted(nominal)  # fixed draw order => seed-stable ensembles
        out = []
        for _ in range(self.ensemble):
            factors = rng.lognormal(mean=0.0, sigma=self.jitter, size=len(names))
            out.append(
                {name: float(nominal[name] * f) for name, f in zip(names, factors)}
            )
        return out

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dump of the request, minus the circuit.

        Mirrors :meth:`AnalysisRequest.to_dict`: the circuit reattaches
        through ``from_dict(..., circuit=...)``, everything else round-
        trips exactly, and non-serializable extras (a live
        ``instrument``) raise :class:`SimulationError`.
        """
        return {
            "analysis": "ensemble",
            "tstop": self.tstop,
            "tstep": self.tstep,
            "options": None if self.options is None else self.options.to_dict(),
            "variants": self.variants,
            "ensemble": self.ensemble,
            "jitter": self.jitter,
            "seed": self.seed,
            "extras": {k: _json_safe(k, v) for k, v in self.extras.items()},
        }

    @classmethod
    def from_dict(cls, data: dict, circuit=None) -> "EnsembleRequest":
        """Rebuild a request from a :meth:`to_dict` dump.

        Validation runs exactly as on direct construction, so the
        circuit must be reattached here.
        """
        options = data.get("options")
        variants = data.get("variants")
        return cls(
            circuit=circuit,
            tstop=data.get("tstop"),
            tstep=data.get("tstep"),
            options=None if options is None else SimOptions.from_dict(options),
            variants=None if variants is None else [dict(v) for v in variants],
            ensemble=data.get("ensemble"),
            jitter=data.get("jitter", 0.05),
            seed=data.get("seed", 0),
            extras=dict(data.get("extras") or {}),
        )


@dataclass
class EnsembleResult:
    """Per-variant :class:`AnalysisResult`s plus the shared-run rollup.

    ``variants[k]`` wraps variant *k*'s
    :class:`~repro.engine.transient.TransientResult` (its column of the
    lockstep solve) exactly as a standalone transient run would be
    wrapped; ``params[k]`` records the parameter overrides it simulated.
    ``stats``/``metrics`` describe the one shared run (one adaptive
    grid, one Newton history, ``metrics.scheme == "ensemble"``);
    anything else is delegated to the raw
    :class:`~repro.engine.ensemble.EnsembleTransientResult`.
    """

    request: EnsembleRequest
    raw: object
    params: list
    variants: list

    analysis = "ensemble"

    @property
    def stats(self):
        return self.raw.stats

    @property
    def metrics(self):
        return self.raw.metrics

    @property
    def times(self):
        return self.raw.times

    @property
    def sims(self) -> int:
        return len(self.variants)

    def __len__(self) -> int:
        return len(self.variants)

    def __getitem__(self, k: int) -> AnalysisResult:
        return self.variants[k]

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.raw, name)


def run_ensemble_request(request: EnsembleRequest) -> EnsembleResult:
    """Dispatch an already-validated :class:`EnsembleRequest`."""
    params = request.resolve_variants()
    circuits = [apply_params(request.circuit, overrides) for overrides in params]
    raw = _run_ensemble_transient(
        circuits,
        request.tstop,
        tstep=request.tstep,
        options=request.options,
        **request.extras,
    )
    variants = [
        AnalysisResult(analysis="transient", request=request, raw=variant)
        for variant in raw.variants
    ]
    return EnsembleResult(request=request, raw=raw, params=params, variants=variants)


def simulate(
    circuit=None,
    analysis: str = "transient",
    *,
    tstop: float | None = None,
    tstep: float | None = None,
    options: SimOptions | None = None,
    threads: int = 2,
    scheme: str | None = None,
    **extras,
) -> "AnalysisResult | EnsembleResult":
    """Run any analysis through one harmonised signature.

    Args:
        circuit: a :class:`~repro.circuit.circuit.Circuit` or an
            already-compiled circuit (optional for ``sweep`` when a
            ``circuit_factory`` is given).
        analysis: one of ``transient``, ``wavepipe``, ``dc``, ``ac``,
            ``sweep``, ``ensemble``, ``wtm``. Passing ``variants=`` or
            ``ensemble=`` promotes a ``transient`` call to ``ensemble``
            implicitly; passing ``partitions=`` promotes it to ``wtm``.
        tstop / tstep: simulation window and suggested step for the
            time-domain analyses.
        options: :class:`~repro.utils.options.SimOptions`; defaults to
            the circuit's compiled options.
        threads: worker count for ``wavepipe`` (and pipelined ``sweep``).
        scheme: WavePipe scheme (``backward``/``forward``/``combined``);
            defaults to ``combined`` for ``wavepipe``, and selects
            pipelined runs inside ``sweep`` when set.
        **extras: analysis-specific keywords — ``source``/``values``
            (dc), ``source``/``freqs`` (ac), ``parameter``/``values``/
            ``metrics`` (sweep), ``uic``/``node_ics``/``instrument``
            (transient, wavepipe, ensemble), ``variants``/``ensemble``/
            ``jitter``/``seed`` (ensemble), ``partitions``/``mode``/
            ``windows``/``relax``/``grid_points``/``strict`` (wtm, where
            ``scheme`` selects per-partition WavePipe pipelining).

    Returns:
        An :class:`AnalysisResult` wrapping the engine's native result,
        or an :class:`EnsembleResult` for ensemble runs.
    """
    if analysis == "transient" and (
        extras.get("variants") is not None or extras.get("ensemble") is not None
    ):
        analysis = "ensemble"
    if analysis == "transient" and extras.get("partitions") is not None:
        analysis = "wtm"
    request = AnalysisRequest(
        analysis=analysis,
        circuit=circuit,
        tstop=tstop,
        tstep=tstep,
        options=options,
        threads=threads,
        scheme=scheme,
        extras=extras,
    )
    return run_request(request)


def run_request(request: AnalysisRequest) -> "AnalysisResult | EnsembleResult":
    """Dispatch an already-validated :class:`AnalysisRequest`."""
    extras = request.extras
    if request.analysis == "ensemble":
        return run_ensemble_request(
            EnsembleRequest(
                circuit=request.circuit,
                tstop=request.tstop,
                tstep=request.tstep,
                options=request.options,
                variants=extras.get("variants"),
                ensemble=extras.get("ensemble"),
                jitter=extras.get("jitter", 0.05),
                seed=extras.get("seed", 0),
                extras={
                    k: v
                    for k, v in extras.items()
                    if k in ("uic", "node_ics", "instrument")
                },
            )
        )
    if request.analysis == "wtm":
        wtm_extras = {k: v for k, v in extras.items() if k != "partitions"}
        raw = _run_wtm(
            request.circuit,
            request.tstop,
            extras.get("partitions", 2),
            scheme=request.scheme,
            threads=request.threads,
            tstep=request.tstep,
            options=request.options,
            **wtm_extras,
        )
        return AnalysisResult(analysis="wtm", request=request, raw=raw)
    if request.analysis == "transient":
        raw = _run_transient(
            request.circuit,
            request.tstop,
            tstep=request.tstep,
            options=request.options,
            **extras,
        )
    elif request.analysis == "wavepipe":
        raw = _run_wavepipe(
            request.circuit,
            request.tstop,
            scheme=request.scheme or "combined",
            threads=request.threads,
            tstep=request.tstep,
            options=request.options,
            **extras,
        )
    elif request.analysis == "dc":
        raw = _dc_sweep(
            request.circuit,
            extras["source"],
            extras["values"],
            options=request.options,
        )
    elif request.analysis == "ac":
        raw = _ac_analysis(
            request.circuit,
            extras["source"],
            extras["freqs"],
            options=request.options,
        )
    else:  # sweep — validated by AnalysisRequest
        raw = _sweep(
            extras["parameter"],
            extras["values"],
            extras["metrics"],
            request.tstop,
            circuit_factory=extras.get("circuit_factory"),
            circuit=request.circuit,
            options=request.options,
            option_field=extras.get("option_field"),
            scheme=request.scheme,
            threads=request.threads,
            skip_failures=extras.get("skip_failures", False),
        )
    return AnalysisResult(analysis=request.analysis, request=request, raw=raw)


def _deprecated_alias(name: str, func, hint: str):
    """Wrap an engine entry point in a DeprecationWarning-emitting shim."""

    @functools.wraps(func)
    def shim(*args, **kwargs):
        warnings.warn(
            f"repro.{name}() is deprecated; use {hint}",
            DeprecationWarning,
            stacklevel=2,
        )
        return func(*args, **kwargs)

    return shim


# Deprecated aliases re-exported from repro/__init__.py. They call the
# engines directly (not simulate()) so return types stay exactly what
# existing callers expect.
run_transient = _deprecated_alias(
    "run_transient", _run_transient, 'repro.simulate(circuit, analysis="transient", ...)'
)
run_wavepipe = _deprecated_alias(
    "run_wavepipe", _run_wavepipe, 'repro.simulate(circuit, analysis="wavepipe", ...)'
)
dc_sweep = _deprecated_alias(
    "dc_sweep", _dc_sweep, 'repro.simulate(circuit, analysis="dc", ...)'
)
ac_analysis = _deprecated_alias(
    "ac_analysis", _ac_analysis, 'repro.simulate(circuit, analysis="ac", ...)'
)
sweep = _deprecated_alias(
    "sweep", _sweep, 'repro.simulate(analysis="sweep", ...)'
)
