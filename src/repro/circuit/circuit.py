"""Circuit builder.

:class:`Circuit` is the user-facing container: a named bag of component
records plus convenience ``add_*`` methods that parse SPICE-style value
strings. :class:`Subcircuit` is a circuit with declared ports; instancing
one into a parent circuit flattens it immediately, prefixing internal names
with ``<instance>.`` exactly like SPICE's ``Xname`` expansion.

Topology validation (:meth:`Circuit.validate`) catches the classic MNA
killers before they become cryptic singular-matrix errors: missing ground,
floating nodes reachable only capacitively, voltage-source loops, and
duplicate component names.
"""

from __future__ import annotations

from collections import defaultdict

from repro.circuit.components import (
    Bjt,
    BjtModel,
    Capacitor,
    Cccs,
    Ccvs,
    Component,
    CurrentSource,
    Diode,
    DiodeModel,
    Inductor,
    Mosfet,
    MosfetModel,
    MutualInductance,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.sources import as_waveform
from repro.errors import CircuitError
from repro.utils.units import parse_value

#: Node names treated as the ground reference.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "Gnd"})


def is_ground(node: str) -> bool:
    """True if *node* names the ground reference."""
    return node in GROUND_NAMES


def canonical_node(node: str) -> str:
    """Map any ground alias to ``"0"``; other names pass through."""
    return "0" if is_ground(node) else node


class Circuit:
    """A mutable collection of component records forming one circuit.

    Components are added either directly (:meth:`add`) or via the typed
    helpers (:meth:`add_resistor` etc.) which accept SPICE value strings
    (``"1k"``, ``"2.5u"``). Node names are arbitrary strings; use ``"0"``
    or ``"gnd"`` for ground.
    """

    def __init__(self, title: str = "circuit"):
        self.title = title
        self._components: dict[str, Component] = {}

    # -- container protocol -------------------------------------------------

    @property
    def components(self) -> tuple[Component, ...]:
        """All components in insertion order."""
        return tuple(self._components.values())

    def __len__(self) -> int:
        return len(self._components)

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __getitem__(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise CircuitError(f"no component named {name!r} in {self.title!r}") from None

    def __repr__(self) -> str:
        return f"Circuit({self.title!r}, {len(self)} components, {len(self.nodes())} nodes)"

    # -- adding components --------------------------------------------------

    def add(self, component: Component) -> Component:
        """Add a pre-built component record; returns it for chaining."""
        if component.name in self._components:
            raise CircuitError(
                f"duplicate component name {component.name!r} in circuit {self.title!r}"
            )
        self._components[component.name] = component
        return component

    def add_resistor(self, name: str, a: str, b: str, value) -> Resistor:
        return self.add(Resistor(name, a, b, parse_value(value)))

    def add_capacitor(self, name: str, a: str, b: str, value, ic: float | None = None) -> Capacitor:
        return self.add(Capacitor(name, a, b, parse_value(value), ic=ic))

    def add_inductor(self, name: str, a: str, b: str, value, ic: float | None = None) -> Inductor:
        return self.add(Inductor(name, a, b, parse_value(value), ic=ic))

    def add_vsource(self, name: str, plus: str, minus: str, waveform) -> VoltageSource:
        return self.add(VoltageSource(name, plus, minus, as_waveform(waveform)))

    def add_isource(self, name: str, plus: str, minus: str, waveform) -> CurrentSource:
        return self.add(CurrentSource(name, plus, minus, as_waveform(waveform)))

    def add_vcvs(self, name, plus, minus, cp, cm, gain) -> Vcvs:
        return self.add(Vcvs(name, plus, minus, cp, cm, parse_value(gain)))

    def add_vccs(self, name, plus, minus, cp, cm, gm) -> Vccs:
        return self.add(Vccs(name, plus, minus, cp, cm, parse_value(gm)))

    def add_cccs(self, name, plus, minus, ctrl_source, gain) -> Cccs:
        return self.add(Cccs(name, plus, minus, ctrl_source, parse_value(gain)))

    def add_ccvs(self, name, plus, minus, ctrl_source, r) -> Ccvs:
        return self.add(Ccvs(name, plus, minus, ctrl_source, parse_value(r)))

    def add_diode(self, name, anode, cathode, model: DiodeModel | None = None, area: float = 1.0) -> Diode:
        return self.add(Diode(name, anode, cathode, model or DiodeModel(), area))

    def add_mosfet(
        self, name, drain, gate, source, bulk, model: MosfetModel | None = None, w=1e-6, l=1e-6
    ) -> Mosfet:
        return self.add(
            Mosfet(name, drain, gate, source, bulk, model or MosfetModel(), parse_value(w), parse_value(l))
        )

    def add_bjt(self, name, collector, base, emitter, model: BjtModel | None = None, area: float = 1.0) -> Bjt:
        return self.add(Bjt(name, collector, base, emitter, model or BjtModel(), area))

    def add_mutual(self, name, inductor1, inductor2, coupling) -> MutualInductance:
        return self.add(
            MutualInductance(name, inductor1, inductor2, parse_value(coupling))
        )

    def add_subcircuit(self, instance_name: str, subcircuit: "Subcircuit", connections: dict[str, str]) -> None:
        """Flatten *subcircuit* into this circuit as instance *instance_name*.

        *connections* maps the subcircuit's port names to nodes of this
        circuit. Internal nodes and component names get the prefix
        ``<instance_name>.``.
        """
        subcircuit.instantiate_into(self, instance_name, connections)

    # -- inspection ----------------------------------------------------------

    def nodes(self) -> tuple[str, ...]:
        """All non-ground node names, in first-appearance order."""
        seen: dict[str, None] = {}
        for comp in self._components.values():
            for node in comp.nodes:
                node = canonical_node(node)
                if node != "0":
                    seen.setdefault(node)
        return tuple(seen)

    def stats(self) -> dict[str, int]:
        """Counts by component class name plus node count (for Table R1)."""
        counts: dict[str, int] = defaultdict(int)
        for comp in self._components.values():
            counts[type(comp).__name__] += 1
        counts["nodes"] = len(self.nodes())
        counts["components"] = len(self)
        return dict(counts)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`CircuitError` for structurally unsolvable circuits.

        Checks: non-empty, touches ground somewhere, every controlled
        source's controlling V-source exists, no node connected solely by
        a single two-terminal component dangling in space (degree-1 node
        on a current source or capacitor would make the DC matrix
        singular), and no loop made purely of voltage sources.
        """
        if not self._components:
            raise CircuitError(f"circuit {self.title!r} has no components")

        touches_ground = any(
            is_ground(node) for comp in self._components.values() for node in comp.nodes
        )
        if not touches_ground:
            raise CircuitError(f"circuit {self.title!r} has no ground node ('0'/'gnd')")

        vsource_names = {
            c.name for c in self._components.values() if isinstance(c, VoltageSource)
        }
        inductor_names = {
            c.name for c in self._components.values() if isinstance(c, Inductor)
        }
        for comp in self._components.values():
            if isinstance(comp, (Cccs, Ccvs)) and comp.ctrl_source not in vsource_names:
                raise CircuitError(
                    f"{comp.name}: controlling source {comp.ctrl_source!r} is not a "
                    "voltage source in this circuit"
                )
            if isinstance(comp, MutualInductance):
                for ref in (comp.inductor1, comp.inductor2):
                    if ref not in inductor_names:
                        raise CircuitError(
                            f"{comp.name}: {ref!r} is not an inductor in this circuit"
                        )

        self._check_dc_path_to_ground()
        self._check_vsource_loops()

    def _check_dc_path_to_ground(self) -> None:
        """Every node needs a DC-conductive path to ground.

        Capacitors and current sources don't conduct at DC (gmin aside);
        a node reachable only through them yields a singular DC matrix.
        We run a union-find over DC-conducting edges (everything except
        capacitors and current sources) and complain about stranded nodes.
        """
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        find("0")
        all_nodes: set[str] = set()
        for comp in self._components.values():
            names = [canonical_node(n) for n in comp.nodes]
            all_nodes.update(names)
            if isinstance(comp, (Capacitor, CurrentSource)):
                continue
            if isinstance(comp, (Vcvs, Vccs)):
                # Only the output branch conducts; control pins sense voltage.
                pair = names[:2]
            else:
                pair = names
            for a, b in zip(pair, pair[1:]):
                union(a, b)

        ground_root = find("0")
        stranded = sorted(
            n for n in all_nodes if n != "0" and find(n) != ground_root
        )
        if stranded:
            raise CircuitError(
                f"circuit {self.title!r}: node(s) {', '.join(stranded)} have no DC "
                "path to ground (connect a resistor or source path)"
            )

    def _check_vsource_loops(self) -> None:
        """Detect cycles in the graph of voltage-source (and VCVS/CCVS) branches."""
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for comp in self._components.values():
            if isinstance(comp, (VoltageSource, Vcvs, Ccvs)):
                a = find(canonical_node(comp.nodes[0]))
                b = find(canonical_node(comp.nodes[1]))
                if a == b:
                    raise CircuitError(
                        f"circuit {self.title!r}: voltage-source loop involving "
                        f"{comp.name} (sources in a cycle fix the same voltage twice)"
                    )
                parent[a] = b


class Subcircuit:
    """A reusable circuit fragment with declared port nodes.

    Build it exactly like a :class:`Circuit`; list external connection
    points in *ports*. :meth:`instantiate_into` flattens a copy into a
    parent circuit with hierarchical ``instance.`` name prefixes.
    """

    def __init__(self, name: str, ports: list[str] | tuple[str, ...]):
        if not ports:
            raise CircuitError(f"subcircuit {name!r} must declare at least one port")
        if len(set(ports)) != len(ports):
            raise CircuitError(f"subcircuit {name!r} has duplicate port names")
        self.name = name
        self.ports = tuple(ports)
        self.circuit = Circuit(title=f"subckt {name}")

    def __getattr__(self, attr: str):
        # Delegate add_* helpers to the inner circuit for ergonomic building.
        if attr.startswith("add"):
            return getattr(self.circuit, attr)
        raise AttributeError(attr)

    def instantiate_into(
        self, parent: Circuit, instance_name: str, connections: dict[str, str]
    ) -> None:
        missing = set(self.ports) - set(connections)
        if missing:
            raise CircuitError(
                f"instance {instance_name!r} of subcircuit {self.name!r} missing "
                f"connections for port(s): {', '.join(sorted(missing))}"
            )
        extra = set(connections) - set(self.ports)
        if extra:
            raise CircuitError(
                f"instance {instance_name!r}: unknown port(s) {', '.join(sorted(extra))}"
            )

        def map_node(node: str) -> str:
            node_c = canonical_node(node)
            if node in connections:
                return connections[node]
            if node_c == "0":
                return "0"
            return f"{instance_name}.{node}"

        def map_name(name: str) -> str:
            return f"{instance_name}.{name}"

        for comp in self.circuit.components:
            parent.add(_remap_component(comp, map_name, map_node))


def _remap_component(comp: Component, map_name, map_node) -> Component:
    """Return a copy of *comp* with renamed nodes and a prefixed name."""
    import dataclasses

    changes: dict[str, object] = {"name": map_name(comp.name)}
    node_fields = {
        Resistor: ("a", "b"),
        Capacitor: ("a", "b"),
        Inductor: ("a", "b"),
        VoltageSource: ("plus", "minus"),
        CurrentSource: ("plus", "minus"),
        Vcvs: ("plus", "minus", "ctrl_plus", "ctrl_minus"),
        Vccs: ("plus", "minus", "ctrl_plus", "ctrl_minus"),
        Cccs: ("plus", "minus"),
        Ccvs: ("plus", "minus"),
        Diode: ("anode", "cathode"),
        Mosfet: ("drain", "gate", "source", "bulk"),
        Bjt: ("collector", "base", "emitter"),
        MutualInductance: (),
    }
    fields = node_fields.get(type(comp))
    if fields is None:
        raise CircuitError(f"cannot instantiate component type {type(comp).__name__}")
    for fieldname in fields:
        changes[fieldname] = map_node(getattr(comp, fieldname))
    if isinstance(comp, (Cccs, Ccvs)):
        changes["ctrl_source"] = map_name(comp.ctrl_source)
    if isinstance(comp, MutualInductance):
        changes["inductor1"] = map_name(comp.inductor1)
        changes["inductor2"] = map_name(comp.inductor2)
    return dataclasses.replace(comp, **changes)
