"""Circuit description layer: builder, components, source waveforms."""
