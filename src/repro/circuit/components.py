"""Component records and device model cards.

These are *descriptions*, not simulation objects: immutable dataclasses the
user (or the netlist parser) creates and hands to a
:class:`~repro.circuit.circuit.Circuit`. The compiler
(:mod:`repro.compilepkg`) later groups them into vectorised device banks.

Node names are plain strings; ``"0"`` and ``"gnd"`` are ground. Component
names must be unique within a circuit and conventionally start with the
SPICE type letter (R1, C2, M3...), though this is not enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.sources import SourceWaveform
from repro.errors import CircuitError


@dataclass(frozen=True)
class Component:
    """Base class for all component records."""

    name: str

    @property
    def nodes(self) -> tuple[str, ...]:
        """All nodes this component touches, in declaration order."""
        raise NotImplementedError

    def __post_init__(self):
        if not self.name:
            raise CircuitError("component name must be non-empty")


def _require_positive(name: str, value: float, what: str) -> None:
    if value <= 0:
        raise CircuitError(f"{name}: {what} must be positive, got {value}")


@dataclass(frozen=True)
class Resistor(Component):
    """Linear resistor between *a* and *b* with ``resistance`` ohms."""

    a: str
    b: str
    resistance: float

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.name, self.resistance, "resistance")

    @property
    def nodes(self):
        return (self.a, self.b)


@dataclass(frozen=True)
class Capacitor(Component):
    """Linear capacitor between *a* and *b*; optional initial voltage ``ic``."""

    a: str
    b: str
    capacitance: float
    ic: float | None = None

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.name, self.capacitance, "capacitance")

    @property
    def nodes(self):
        return (self.a, self.b)


@dataclass(frozen=True)
class Inductor(Component):
    """Linear inductor between *a* and *b*; optional initial current ``ic``.

    Adds one branch-current unknown to the MNA system.
    """

    a: str
    b: str
    inductance: float
    ic: float | None = None

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.name, self.inductance, "inductance")

    @property
    def nodes(self):
        return (self.a, self.b)


@dataclass(frozen=True)
class VoltageSource(Component):
    """Independent voltage source from *plus* to *minus*.

    Adds one branch-current unknown. ``waveform`` is any
    :class:`~repro.circuit.sources.SourceWaveform`.
    """

    plus: str
    minus: str
    waveform: SourceWaveform

    @property
    def nodes(self):
        return (self.plus, self.minus)


@dataclass(frozen=True)
class CurrentSource(Component):
    """Independent current source pushing current from *plus* to *minus*
    through the source (SPICE convention: positive value pulls current out
    of *plus* node into *minus* node externally)."""

    plus: str
    minus: str
    waveform: SourceWaveform

    @property
    def nodes(self):
        return (self.plus, self.minus)


@dataclass(frozen=True)
class Vcvs(Component):
    """Voltage-controlled voltage source (SPICE ``E``): V(p,m) = gain * V(cp,cm)."""

    plus: str
    minus: str
    ctrl_plus: str
    ctrl_minus: str
    gain: float

    @property
    def nodes(self):
        return (self.plus, self.minus, self.ctrl_plus, self.ctrl_minus)


@dataclass(frozen=True)
class Vccs(Component):
    """Voltage-controlled current source (SPICE ``G``): I(p->m) = gm * V(cp,cm)."""

    plus: str
    minus: str
    ctrl_plus: str
    ctrl_minus: str
    transconductance: float

    @property
    def nodes(self):
        return (self.plus, self.minus, self.ctrl_plus, self.ctrl_minus)


@dataclass(frozen=True)
class Cccs(Component):
    """Current-controlled current source (SPICE ``F``).

    The controlling current is the branch current of the named voltage
    source ``ctrl_source``.
    """

    plus: str
    minus: str
    ctrl_source: str
    gain: float

    @property
    def nodes(self):
        return (self.plus, self.minus)


@dataclass(frozen=True)
class Ccvs(Component):
    """Current-controlled voltage source (SPICE ``H``).

    Adds its own branch-current unknown; the controlling current is the
    branch current of the named voltage source ``ctrl_source``.
    """

    plus: str
    minus: str
    ctrl_source: str
    transresistance: float

    @property
    def nodes(self):
        return (self.plus, self.minus)


@dataclass(frozen=True)
class MutualInductance(Component):
    """Magnetic coupling between two inductors (SPICE ``K`` element).

    ``coupling`` is the dimensionless k factor, |k| < 1; the mutual
    inductance is ``M = k * sqrt(L1 * L2)``. The named inductors must
    exist in the same circuit.
    """

    inductor1: str
    inductor2: str
    coupling: float

    def __post_init__(self):
        super().__post_init__()
        if not 0 < abs(self.coupling) < 1:
            raise CircuitError(
                f"{self.name}: coupling factor must satisfy 0 < |k| < 1 "
                f"(got {self.coupling}); k = +-1 would make the inductance "
                "matrix singular"
            )
        if self.inductor1 == self.inductor2:
            raise CircuitError(f"{self.name}: cannot couple an inductor to itself")

    @property
    def nodes(self):
        return ()  # couples branches, not nodes


# --------------------------------------------------------------------------
# Model cards
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DiodeModel:
    """Shockley diode model card.

    Attributes follow SPICE: saturation current ``is_``, emission
    coefficient ``n``, series resistance ``rs`` (0 disables), junction
    capacitance ``cj0`` with built-in potential ``vj`` and grading ``m``,
    transit time ``tt``.
    """

    name: str = "D"
    is_: float = 1e-14
    n: float = 1.0
    rs: float = 0.0
    cj0: float = 0.0
    vj: float = 1.0
    m: float = 0.5
    tt: float = 0.0

    def __post_init__(self):
        if self.is_ <= 0 or self.n <= 0 or self.vj <= 0:
            raise CircuitError(f"diode model {self.name}: is/n/vj must be positive")
        if self.rs < 0 or self.cj0 < 0 or self.tt < 0:
            raise CircuitError(f"diode model {self.name}: rs/cj0/tt must be >= 0")


@dataclass(frozen=True)
class MosfetModel:
    """Level-1 (Shichman–Hodges) MOSFET model card.

    Attributes:
        polarity: ``"nmos"`` or ``"pmos"``.
        vto: zero-bias threshold voltage (positive for NMOS enhancement).
        kp: transconductance parameter (A/V^2), multiplies W/L.
        lambda_: channel-length modulation (1/V).
        gamma / phi: body-effect coefficient and surface potential.
        cox: gate-oxide capacitance per area (F/m^2) for charge model.
        cgso / cgdo: gate overlap capacitances per width (F/m).
    """

    name: str = "M"
    polarity: str = "nmos"
    vto: float = 0.7
    kp: float = 110e-6
    lambda_: float = 0.04
    gamma: float = 0.0
    phi: float = 0.65
    cox: float = 3.45e-3
    cgso: float = 0.0
    cgdo: float = 0.0

    def __post_init__(self):
        if self.polarity not in ("nmos", "pmos"):
            raise CircuitError(f"mosfet model {self.name}: polarity must be nmos/pmos")
        if self.kp <= 0 or self.phi <= 0:
            raise CircuitError(f"mosfet model {self.name}: kp/phi must be positive")
        if self.lambda_ < 0 or self.gamma < 0 or self.cox < 0:
            raise CircuitError(f"mosfet model {self.name}: lambda/gamma/cox must be >= 0")


@dataclass(frozen=True)
class BjtModel:
    """Ebers–Moll BJT model card.

    Attributes:
        polarity: ``"npn"`` or ``"pnp"``.
        is_: transport saturation current.
        bf / br: forward / reverse beta.
        vaf: forward Early voltage (inf disables).
        cje / cjc: zero-bias junction capacitances.
        tf: forward transit time (diffusion capacitance).
    """

    name: str = "Q"
    polarity: str = "npn"
    is_: float = 1e-16
    bf: float = 100.0
    br: float = 1.0
    vaf: float = float("inf")
    cje: float = 0.0
    cjc: float = 0.0
    tf: float = 0.0

    def __post_init__(self):
        if self.polarity not in ("npn", "pnp"):
            raise CircuitError(f"bjt model {self.name}: polarity must be npn/pnp")
        if self.is_ <= 0 or self.bf <= 0 or self.br <= 0:
            raise CircuitError(f"bjt model {self.name}: is/bf/br must be positive")


# --------------------------------------------------------------------------
# Nonlinear devices
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Diode(Component):
    """Junction diode from *anode* to *cathode* using ``model``.

    ``area`` scales saturation current and capacitance.
    """

    anode: str
    cathode: str
    model: DiodeModel = field(default_factory=DiodeModel)
    area: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.name, self.area, "area")

    @property
    def nodes(self):
        return (self.anode, self.cathode)


@dataclass(frozen=True)
class Mosfet(Component):
    """MOSFET with terminals drain, gate, source, bulk."""

    drain: str
    gate: str
    source: str
    bulk: str
    model: MosfetModel = field(default_factory=MosfetModel)
    w: float = 1e-6
    l: float = 1e-6

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.name, self.w, "width")
        _require_positive(self.name, self.l, "length")

    @property
    def nodes(self):
        return (self.drain, self.gate, self.source, self.bulk)


@dataclass(frozen=True)
class Bjt(Component):
    """Bipolar transistor with terminals collector, base, emitter."""

    collector: str
    base: str
    emitter: str
    model: BjtModel = field(default_factory=BjtModel)
    area: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.name, self.area, "area")

    @property
    def nodes(self):
        return (self.collector, self.base, self.emitter)
