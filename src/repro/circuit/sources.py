"""Independent-source waveforms.

Each waveform knows its value at any time (:meth:`SourceWaveform.value`),
can evaluate itself on a numpy vector of times (:meth:`values`), and
reports its *breakpoints* — times at which it is non-smooth and the
transient engine must place a time point and restart step-size control.
Breakpoint handling is what lets LTE-controlled integration step over
PULSE/PWL corners without either missing the edge or grinding along at a
tiny step "just in case".

The shapes and parameter names mirror SPICE: DC, PULSE, SIN, PWL, EXP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CircuitError


class SourceWaveform:
    """Base class for time-dependent source descriptions."""

    def value(self, t: float) -> float:
        """Source value at time *t* (seconds)."""
        raise NotImplementedError

    def values(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`; subclasses override when profitable."""
        return np.array([self.value(float(t)) for t in np.asarray(times)])

    def breakpoints(self, tstop: float) -> list[float]:
        """Times in ``[0, tstop]`` where the waveform has a corner."""
        return []

    @property
    def dc(self) -> float:
        """Value used for the DC operating point (t = 0)."""
        return self.value(0.0)


@dataclass(frozen=True)
class Dc(SourceWaveform):
    """Constant source."""

    level: float = 0.0

    def value(self, t: float) -> float:
        return self.level

    def values(self, times: np.ndarray) -> np.ndarray:
        return np.full(np.shape(times), self.level)


@dataclass(frozen=True)
class Pulse(SourceWaveform):
    """SPICE PULSE(v1 v2 td tr tf pw per) waveform.

    Rises from *v1* to *v2* starting at *td* over *tr*, holds for *pw*,
    falls over *tf*, and repeats with period *per* (0 or None = one-shot).
    """

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float | None = None

    def __post_init__(self):
        if self.rise < 0 or self.fall < 0 or self.width < 0:
            raise CircuitError("PULSE rise/fall/width must be non-negative")
        if self.period is not None and self.period <= 0:
            raise CircuitError("PULSE period must be positive (or None)")
        min_period = self.rise + self.fall + self.width
        if self.period is not None and self.period < min_period:
            raise CircuitError(
                f"PULSE period {self.period} shorter than rise+width+fall {min_period}"
            )

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        local = t - self.delay
        if self.period:
            local = local % self.period
        if local < self.rise:
            if self.rise == 0:
                return self.v2
            return self.v1 + (self.v2 - self.v1) * local / self.rise
        local -= self.rise
        if local < self.width:
            return self.v2
        local -= self.width
        if local < self.fall:
            if self.fall == 0:
                return self.v1
            return self.v2 + (self.v1 - self.v2) * local / self.fall
        return self.v1

    def breakpoints(self, tstop: float) -> list[float]:
        corners = [0.0, self.rise, self.rise + self.width, self.rise + self.width + self.fall]
        points: list[float] = []
        cycle = 0
        while True:
            base = self.delay + (cycle * self.period if self.period else 0.0)
            if base > tstop:
                break
            points.extend(base + c for c in corners if base + c <= tstop)
            if not self.period:
                break
            cycle += 1
        return points


@dataclass(frozen=True)
class Sin(SourceWaveform):
    """SPICE SIN(vo va freq td theta) waveform.

    ``vo + va * sin(2*pi*freq*(t - td))`` for t >= td, with optional
    exponential damping ``theta`` (1/s); constant *vo* before *td*.
    """

    offset: float
    amplitude: float
    freq: float
    delay: float = 0.0
    theta: float = 0.0

    def __post_init__(self):
        if self.freq <= 0:
            raise CircuitError("SIN frequency must be positive")

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        phase = 2.0 * math.pi * self.freq * (t - self.delay)
        damp = math.exp(-self.theta * (t - self.delay)) if self.theta else 1.0
        return self.offset + self.amplitude * damp * math.sin(phase)

    def values(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        local = times - self.delay
        active = local >= 0
        phase = 2.0 * np.pi * self.freq * local
        damp = np.exp(-self.theta * local) if self.theta else 1.0
        wave = self.offset + self.amplitude * damp * np.sin(phase)
        return np.where(active, wave, self.offset)

    def breakpoints(self, tstop: float) -> list[float]:
        # Smooth except at turn-on.
        return [self.delay] if 0.0 < self.delay <= tstop else []


@dataclass(frozen=True)
class Pwl(SourceWaveform):
    """Piecewise-linear waveform from (time, value) pairs.

    Holds the first value before the first time and the last value after
    the last time. Times must be strictly increasing.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self):
        if len(self.points) < 1:
            raise CircuitError("PWL needs at least one (time, value) point")
        times = [p[0] for p in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise CircuitError("PWL times must be strictly increasing")

    def value(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        # Binary search for the surrounding segment.
        lo, hi = 0, len(pts) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if pts[mid][0] <= t:
                lo = mid
            else:
                hi = mid
        t0, v0 = pts[lo]
        t1, v1 = pts[hi]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def breakpoints(self, tstop: float) -> list[float]:
        return [t for t, _ in self.points if 0.0 <= t <= tstop]


@dataclass(frozen=True)
class Exp(SourceWaveform):
    """SPICE EXP(v1 v2 td1 tau1 td2 tau2) waveform.

    Exponential rise from *v1* toward *v2* starting at *td1* with time
    constant *tau1*, then exponential decay back toward *v1* starting at
    *td2* with time constant *tau2*.
    """

    v1: float
    v2: float
    td1: float = 0.0
    tau1: float = 1e-9
    td2: float = 1e-9
    tau2: float = 1e-9

    def __post_init__(self):
        if self.tau1 <= 0 or self.tau2 <= 0:
            raise CircuitError("EXP time constants must be positive")
        if self.td2 < self.td1:
            raise CircuitError("EXP requires td2 >= td1")

    def value(self, t: float) -> float:
        v = self.v1
        if t >= self.td1:
            v += (self.v2 - self.v1) * (1.0 - math.exp(-(t - self.td1) / self.tau1))
        if t >= self.td2:
            v += (self.v1 - self.v2) * (1.0 - math.exp(-(t - self.td2) / self.tau2))
        return v

    def breakpoints(self, tstop: float) -> list[float]:
        return [t for t in (self.td1, self.td2) if 0.0 <= t <= tstop]


class SampledWaveform(SourceWaveform):
    """Waveform defined by dense samples (linear interpolation, no corners).

    Used by waveform relaxation to drive partition-boundary nodes with the
    previous iterate's solution: unlike :class:`Pwl` it deliberately
    reports **no breakpoints**, because its thousands of sample points are
    smooth simulation output, not source corners the step controller must
    land on.
    """

    def __init__(self, times, values):
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or times.shape != values.shape or times.size == 0:
            raise CircuitError("sampled waveform needs matching non-empty 1-D arrays")
        if times.size >= 2 and np.any(np.diff(times) <= 0):
            raise CircuitError("sampled waveform times must strictly increase")
        self.times = times
        self.sample_values = values

    def value(self, t: float) -> float:
        return float(np.interp(t, self.times, self.sample_values))

    def values(self, times: np.ndarray) -> np.ndarray:
        return np.interp(times, self.times, self.sample_values)

    def __repr__(self) -> str:
        return f"SampledWaveform({self.times.size} samples)"


def as_waveform(value) -> SourceWaveform:
    """Coerce *value* into a :class:`SourceWaveform`.

    Numbers become :class:`Dc`; waveforms pass through unchanged.
    """
    if isinstance(value, SourceWaveform):
        return value
    if isinstance(value, (int, float)):
        return Dc(float(value))
    raise CircuitError(f"cannot interpret {value!r} as a source waveform")
