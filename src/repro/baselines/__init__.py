"""The parallel-SPICE baselines WavePipe is contrasted against."""
