"""Waveform relaxation (WR) baseline — the method the abstract contrasts.

Classic Lelarasmee-style WR decomposes the circuit into subcircuits and
iterates: each subcircuit is transient-simulated over the *whole* window
with the other subcircuits' node waveforms frozen at the previous sweep's
values, until the waveforms stop changing. Subcircuit solves within one
sweep are independent, so WR parallelises trivially — but its convergence
is a fixed-point iteration whose rate collapses when partitions are
tightly (especially bidirectionally) coupled. That is exactly the failure
mode the WavePipe abstract calls out ("unlike existing relaxation
methods, WavePipe facilitates parallel circuit simulation without
jeopardying convergence and accuracy").

Implementation: partitions are node sets (one owner block per node). Each
block's subproblem reuses the *full* engine: every component touching the
block is kept, and foreign nodes are driven by
:class:`~repro.circuit.sources.SampledWaveform` voltage sources carrying
the previous iterate. Gauss-Jacobi sweeps (all blocks see the previous
sweep) model the parallel execution; Gauss-Seidel (in-sweep updates) is
available for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.circuit.circuit import Circuit, canonical_node
from repro.circuit.sources import SampledWaveform
from repro.engine.transient import run_transient
from repro.errors import SimulationError
from repro.utils.options import SimOptions
from repro.waveform.waveform import WaveformSet


def connectivity_graph(circuit: Circuit) -> nx.Graph:
    """Undirected node-connectivity graph (ground excluded)."""
    graph = nx.Graph()
    for comp in circuit.components:
        nodes = [canonical_node(n) for n in comp.nodes]
        nodes = [n for n in nodes if n != "0"]
        graph.add_nodes_from(nodes)
        for a, b in zip(nodes, nodes[1:]):
            graph.add_edge(a, b)
    return graph


def partition_nodes(circuit: Circuit, blocks: int = 2) -> list[set[str]]:
    """Split the circuit's nodes into *blocks* balanced partitions.

    Recursive Kernighan-Lin bisection over the connectivity graph — cuts
    fall on the weakest couplings KL can find, which is the partitioning
    WR literature assumes. *blocks* must be a power of two.
    """
    if blocks < 1 or blocks & (blocks - 1):
        raise SimulationError("partition_nodes needs a power-of-two block count")
    graph = connectivity_graph(circuit)
    parts: list[set[str]] = [set(graph.nodes)]
    while len(parts) < blocks:
        new_parts: list[set[str]] = []
        for part in parts:
            if len(part) < 2:
                new_parts.append(part)
                continue
            sub = graph.subgraph(part)
            a, b = nx.algorithms.community.kernighan_lin_bisection(sub, seed=7)
            new_parts.extend([set(a), set(b)])
        if len(new_parts) == len(parts):
            break
        parts = new_parts
    return [p for p in parts if p]


@dataclass
class WrResult:
    """Waveform relaxation outcome.

    Attributes:
        waveforms: final iterate resampled on a common grid.
        sweeps: sweeps executed (== max_sweeps when not converged).
        converged: fixed point reached within tolerance.
        sweep_deltas: max inter-sweep waveform change per sweep (V).
        serial_work: summed engine work of every block solve.
        parallel_work: virtual cost with all blocks of a sweep concurrent
            (sum over sweeps of the costliest block).
    """

    waveforms: WaveformSet
    sweeps: int
    converged: bool
    sweep_deltas: list[float] = field(default_factory=list)
    serial_work: float = 0.0
    parallel_work: float = 0.0


class WaveformRelaxation:
    """Gauss-Jacobi / Gauss-Seidel WR driver over a node partition."""

    def __init__(
        self,
        circuit: Circuit,
        tstop: float,
        partition: list[set[str]] | None = None,
        blocks: int = 2,
        options: SimOptions | None = None,
        mode: str = "jacobi",
        grid_points: int = 400,
    ):
        if mode not in ("jacobi", "seidel"):
            raise SimulationError("WR mode must be 'jacobi' or 'seidel'")
        self.circuit = circuit
        self.tstop = float(tstop)
        self.options = options or SimOptions()
        self.mode = mode
        self.partition = partition or partition_nodes(circuit, blocks)
        self.grid = np.linspace(0.0, self.tstop, grid_points)
        # Boundary waveforms are sampled data without breakpoint metadata;
        # cap the block solver's step at twice the sample spacing so edges
        # carried by a neighbouring block cannot be stepped over. (This
        # windowed-grid behaviour matches classic WR implementations.)
        self._block_options = self.options.replace(
            max_step=2.0 * self.tstop / max(grid_points - 1, 1)
        )
        self._owner: dict[str, int] = {}
        for idx, part in enumerate(self.partition):
            for node in part:
                if node in self._owner:
                    raise SimulationError(f"node {node!r} assigned to two blocks")
                self._owner[node] = idx
        all_nodes = set(circuit.nodes())
        missing = all_nodes - set(self._owner)
        if missing:
            raise SimulationError(f"partition misses node(s): {sorted(missing)}")

    # -- sub-circuit construction -------------------------------------------

    def _block_circuit(self, block_idx: int, iterate: dict[str, np.ndarray]) -> Circuit:
        """Block subproblem: own components + frozen foreign waveforms."""
        block = self.partition[block_idx]
        sub = Circuit(f"{self.circuit.title}#wr{block_idx}")
        foreign: set[str] = set()
        for comp in self.circuit.components:
            nodes = {canonical_node(n) for n in comp.nodes} - {"0"}
            if not nodes & block:
                continue
            sub.add(comp)
            foreign |= nodes - block
        for node in sorted(foreign):
            sub.add_vsource(
                f"VWR#{node}", node, "0", SampledWaveform(self.grid, iterate[node])
            )
        return sub

    # -- driver ------------------------------------------------------------------

    def run(self, max_sweeps: int = 30, wr_vtol: float = 1e-3) -> WrResult:
        """Iterate sweeps until the waveform fixed point (or the cap)."""
        iterate = self._initial_iterate()
        deltas: list[float] = []
        serial_work = 0.0
        parallel_work = 0.0
        converged = False
        sweeps = 0

        for sweep in range(1, max_sweeps + 1):
            sweeps = sweep
            source = dict(iterate)  # Jacobi reads the previous sweep
            updated: dict[str, np.ndarray] = dict(iterate)
            block_costs: list[float] = []
            for b in range(len(self.partition)):
                boundary_view = updated if self.mode == "seidel" else source
                sub = self._block_circuit(b, boundary_view)
                result = run_transient(sub, self.tstop, options=self._block_options)
                block_costs.append(result.stats.total_work)
                for node in self.partition[b]:
                    trace = result.waveforms.voltage(node)
                    updated[node] = trace.at(self.grid)
            serial_work += sum(block_costs)
            parallel_work += max(block_costs)

            delta = max(
                float(np.abs(updated[n] - iterate[n]).max()) for n in iterate
            )
            deltas.append(delta)
            iterate = updated
            if delta <= wr_vtol:
                converged = True
                break

        data = {f"v({node})": values for node, values in iterate.items()}
        return WrResult(
            waveforms=WaveformSet(self.grid, data),
            sweeps=sweeps,
            converged=converged,
            sweep_deltas=deltas,
            serial_work=serial_work,
            parallel_work=parallel_work,
        )

    def _initial_iterate(self) -> dict[str, np.ndarray]:
        """Start from the DC operating point held constant over the window."""
        from repro.mna.compiler import compile_circuit
        from repro.mna.system import MnaSystem
        from repro.solver.dcop import solve_operating_point

        compiled = compile_circuit(self.circuit, self.options)
        system = MnaSystem(compiled)
        op = solve_operating_point(system, self.options)
        iterate = {}
        for node in self.circuit.nodes():
            idx = compiled.node_voltage_index(node)
            iterate[node] = np.full(self.grid.size, op.x[idx])
        return iterate
