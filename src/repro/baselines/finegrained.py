"""Fine-grained intra-iteration parallelism baseline (Amdahl model).

The conventional way to parallelise SPICE — the approach the abstract says
WavePipe goes *beyond* — splits each Newton iteration internally:

* device model evaluation: embarrassingly parallel across devices;
* sparse matrix factorisation / triangular solves: notoriously resistant
  to parallelism (dependency chains along the elimination tree), with
  small circuit matrices capping at a low speedup regardless of cores.

We model it from *measured* serial runs: the instrumented work split
between device evaluation and matrix work comes from the same cost model
that prices WavePipe's tasks, so the comparison in Fig. R4 is
apples-to-apples. The matrix portion is given a generous parallel cap
(:data:`MATRIX_SPEEDUP_CAP`); per-iteration fork/join overhead charges a
fixed fraction per thread.

This is the one *modelled* (rather than executed) component in this
reproduction: executing real fine-grained parallel LU in pure Python
would measure interpreter overheads, not the algorithm. The model is
deliberately optimistic — it gives the baseline every benefit of the
doubt, so WavePipe's advantage where shown is conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.transient import TransientResult
from repro.mna.system import MnaSystem

#: Max speedup of the sparse factorisation/solve portion, independent of
#: thread count (elimination-tree parallelism on circuit matrices).
MATRIX_SPEEDUP_CAP = 2.0

#: Per-thread fork/join overhead as a fraction of one iteration's work.
FORK_JOIN_OVERHEAD = 0.002


@dataclass(frozen=True)
class FineGrainedEstimate:
    """Projected fine-grained runtime for one measured serial run."""

    threads: int
    serial_work: float
    parallel_work: float

    @property
    def speedup(self) -> float:
        """Projected speedup over the measured serial run."""
        if self.parallel_work <= 0:
            return 1.0
        return self.serial_work / self.parallel_work

    @property
    def efficiency(self) -> float:
        """Speedup divided by thread count (parallel efficiency)."""
        return self.speedup / max(self.threads, 1)


def work_split(system: MnaSystem) -> tuple[float, float]:
    """(device-eval work, matrix work) per Newton iteration — the same
    decomposition :func:`repro.solver.newton.iteration_work` charges."""
    return system.work_units_per_eval, 0.05 * system.pattern.nnz


def fine_grained_estimate(
    system: MnaSystem,
    sequential: TransientResult,
    threads: int,
) -> FineGrainedEstimate:
    """Project the ideal fine-grained runtime of a measured serial run.

    Device evaluation scales as ``1/threads``; matrix work scales as
    ``1/min(threads, MATRIX_SPEEDUP_CAP)``; every iteration pays the
    fork/join overhead once per extra thread.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    dev_work, mat_work = work_split(system)
    iter_work = dev_work + mat_work
    iterations = sequential.stats.newton_iterations
    serial = iterations * iter_work + sequential.stats.dc_work_units

    overhead = FORK_JOIN_OVERHEAD * iter_work * (threads - 1)
    per_iter = (
        dev_work / threads
        + mat_work / min(float(threads), MATRIX_SPEEDUP_CAP)
        + overhead
    )
    # The DC operating point parallelises the same way.
    dc_scale = per_iter / iter_work
    parallel = iterations * per_iter + sequential.stats.dc_work_units * dc_scale
    return FineGrainedEstimate(threads, serial, parallel)


def fine_grained_curve(
    system: MnaSystem,
    sequential: TransientResult,
    thread_counts: list[int],
) -> list[FineGrainedEstimate]:
    """Speedup-vs-threads curve for Fig. R4."""
    return [fine_grained_estimate(system, sequential, t) for t in thread_counts]
