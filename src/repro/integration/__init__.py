"""Numerical integration: methods, history, LTE, step control."""
