"""Accepted-timepoint history: divided differences and the predictor.

The history is the shared substrate of sequential step control *and* both
WavePipe schemes:

* Integration coefficients need the last one or two accepted points.
* LTE estimation needs divided differences over the most recent cluster.
* The polynomial predictor extrapolates the next solution — Newton's
  initial guess sequentially, and the *speculative history* for forward
  pipelining.

Histories are cheap to snapshot (:meth:`TimepointHistory.clone`): WavePipe
tasks each receive an immutable view of the accepted prefix so concurrent
solves cannot race on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class Timepoint:
    """One accepted solution: time, solution, charge, charge derivative."""

    t: float
    x: np.ndarray
    q: np.ndarray
    qdot: np.ndarray


def divided_difference(points: list[tuple[float, np.ndarray]]) -> np.ndarray:
    """k-th divided difference over k+1 (time, vector) points.

    Approximates ``x^(k)(t) / k!`` near the points. Times must be
    pairwise distinct; order is irrelevant mathematically but callers
    pass newest-first by convention.
    """
    if len(points) < 2:
        raise SimulationError("divided difference needs at least 2 points")
    times = [float(t) for t, _ in points]
    vals = [np.asarray(v, dtype=float).copy() for _, v in points]
    n = len(points)
    for level in range(1, n):
        for i in range(n - level):
            dt = times[i] - times[i + level]
            if dt == 0.0:
                raise SimulationError("divided difference with coincident times")
            vals[i] = (vals[i] - vals[i + 1]) / dt
    return vals[0]


def neville_extrapolate(points: list[tuple[float, np.ndarray]], t_new: float) -> np.ndarray:
    """Evaluate the interpolating polynomial through *points* at *t_new*."""
    if not points:
        raise SimulationError("extrapolation needs at least one point")
    times = [float(t) for t, _ in points]
    vals = [np.asarray(v, dtype=float).copy() for _, v in points]
    n = len(points)
    for level in range(1, n):
        for i in range(n - level):
            denom = times[i] - times[i + level]
            vals[i] = (
                (t_new - times[i + level]) * vals[i] - (t_new - times[i]) * vals[i + 1]
            ) / denom
    return vals[0]


class TimepointHistory:
    """Bounded list of accepted timepoints, newest last."""

    def __init__(self, maxlen: int = 8):
        if maxlen < 2:
            raise SimulationError("history needs maxlen >= 2")
        self.maxlen = maxlen
        self._points: list[Timepoint] = []
        self._era_start = 0

    def __len__(self) -> int:
        return len(self._points)

    def __getitem__(self, i: int) -> Timepoint:
        return self._points[i]

    @property
    def last(self) -> Timepoint:
        if not self._points:
            raise SimulationError("history is empty")
        return self._points[-1]

    @property
    def times(self) -> list[float]:
        return [p.t for p in self._points]

    @property
    def last_step(self) -> float | None:
        """Gap between the two newest points, None with fewer than 2."""
        if len(self._points) < 2:
            return None
        return self._points[-1].t - self._points[-2].t

    def append(self, point: Timepoint) -> None:
        if self._points and point.t <= self._points[-1].t:
            raise SimulationError(
                f"timepoint {point.t} not after history front {self._points[-1].t}"
            )
        self._points.append(point)
        if len(self._points) > self.maxlen:
            del self._points[0]
            self._era_start = max(0, self._era_start - 1)

    def mark_era(self) -> None:
        """Start a new smoothness era at the newest point.

        Called after landing on a source breakpoint: the solution is
        non-smooth across the corner, so divided differences and
        polynomial predictions must not span it. The breakpoint solution
        itself belongs to the new era (it is a valid state on both sides).
        """
        if self._points:
            self._era_start = len(self._points) - 1

    @property
    def era_length(self) -> int:
        """Number of points in the current smoothness era."""
        return len(self._points) - self._era_start

    def clone(self) -> "TimepointHistory":
        """Shallow snapshot (Timepoints are frozen, arrays never mutated)."""
        copy = TimepointHistory(self.maxlen)
        copy._points = list(self._points)
        copy._era_start = self._era_start
        return copy

    def newest(self, count: int, same_era: bool = True) -> list[Timepoint]:
        """Up to *count* newest points, newest first.

        With *same_era* (default) the window stops at the last breakpoint
        corner — the only points over which divided differences are
        meaningful.
        """
        pool = self._points[self._era_start :] if same_era else self._points
        return list(reversed(pool[-count:]))

    # -- numerical services ---------------------------------------------------

    def solution_divided_difference(
        self, order: int, candidate: tuple[float, np.ndarray] | None = None
    ) -> np.ndarray | None:
        """dd of *order* over the newest points (optionally with a candidate).

        Returns None when not enough points exist yet — callers treat a
        missing estimate as "no information" and stay conservative.
        """
        needed = order + 1
        pts: list[tuple[float, np.ndarray]] = []
        if candidate is not None:
            pts.append(candidate)
        for p in self.newest(needed):
            pts.append((p.t, p.x))
        if len(pts) < needed:
            return None
        return divided_difference(pts[:needed])

    def predict(self, t_new: float, order: int) -> np.ndarray:
        """Extrapolate the solution to *t_new* using up to *order*+1 points.

        Degrades gracefully: with a single (era) history point this is a
        constant prediction, with two a linear one, and so on. The window
        never spans a breakpoint corner.
        """
        count = min(order + 1, self.era_length)
        if count == 0:
            raise SimulationError("cannot predict from an empty history")
        pts = [(p.t, p.x) for p in self.newest(count)]
        return neville_extrapolate(pts, t_new)
