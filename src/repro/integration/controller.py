"""Adaptive step-size controller (the sequential baseline's policy).

Encapsulates the SPICE time-stepping state machine:

* recommended next step from the last LTE verdict, clamped by the
  consecutive-step **ratio bound** ``step_ratio_max`` (the conservatism
  WavePipe's backward pipelining is designed to overcome),
* shrink-and-retry on LTE rejection and on Newton failure,
* breakpoint clipping and a backward-Euler restart after each breakpoint
  (integration history is untrustworthy across a source corner),
* minimum-step protection that raises
  :class:`~repro.errors.TimestepError` instead of looping forever.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import TimestepError
from repro.instrument.events import (
    OUTCOME_LTE_REJECT,
    OUTCOME_NEWTON_FAIL,
)
from repro.instrument.recorder import resolve_recorder
from repro.integration.lte import LteVerdict
from repro.utils.options import SimOptions

#: Relative slack when deciding a step "lands on" a breakpoint.
BREAKPOINT_SNAP = 0.1


class RejectReason(enum.Enum):
    """Structured cause of a shrink-and-retry transition.

    The enum value doubles as the span outcome tag and the suffix of the
    ``controller.reject.<value>`` counter, so the diagnosis taxonomy in
    ``repro explain`` and the counters literally cannot drift apart.
    ``STALL_GUARD`` is reserved for the Newton bypass stall fallback
    (booked by the solver as ``newton.bypass_fallback``); the controller
    itself only ever shrinks for the first two.
    """

    LTE = OUTCOME_LTE_REJECT
    NEWTON_FAIL = OUTCOME_NEWTON_FAIL
    STALL_GUARD = "stall_guard"

    @property
    def describe(self) -> str:
        """Human phrasing used in error messages."""
        return _REJECT_DESCRIPTIONS[self]

    @property
    def counter(self) -> str:
        """Canonical counter channel for this cause."""
        return f"controller.reject.{self.value}"


_REJECT_DESCRIPTIONS = {
    RejectReason.LTE: "LTE rejection",
    RejectReason.NEWTON_FAIL: "Newton failure",
    RejectReason.STALL_GUARD: "bypass stall fallback",
}


class StepController:
    """Step-size policy for one transient run."""

    def __init__(
        self,
        options: SimOptions,
        tstop: float,
        h_initial: float,
        breakpoints: np.ndarray | None = None,
    ):
        if tstop <= 0:
            raise TimestepError("tstop must be positive")
        if h_initial <= 0:
            raise TimestepError("initial step must be positive")
        self.options = options
        self._rec = resolve_recorder(options.instrument)
        self.tstop = tstop
        self.min_step = options.min_step_fraction * tstop
        self.max_step = options.max_step if options.max_step else tstop
        self.breakpoints = (
            np.array(sorted(set(map(float, breakpoints))))
            if breakpoints is not None
            else np.array([tstop])
        )
        self.h_rec = min(h_initial, self.max_step)
        self._force_be = True  # cold start: no qdot/second point yet
        self.rejections = 0
        self.newton_failures = 0
        #: Cause of the most recent shrink-and-retry, or None before any.
        self.last_reject: RejectReason | None = None
        #: True when the latest recommendation was clamped by the
        #: consecutive-step ratio bound rather than by LTE — exactly the
        #: regime WavePipe's backward chain extension targets.
        self.ratio_limited = True
        #: Consecutive ratio-limited accepts. A single ratio-limited point
        #: can be an LTE-estimate blind spot (curvature inflection); a
        #: *streak* means a genuine step ramp, which is the regime where
        #: chain extension is safe and profitable.
        self.ratio_streak = 1
        #: The unclamped (LTE-optimal) step from the latest verdict, or
        #: +inf when no estimate existed; backward pipelining caps its
        #: chain with it.
        self.h_unclamped = float("inf")

    # -- queries ---------------------------------------------------------------

    @property
    def force_be(self) -> bool:
        """True when the next solve must use backward Euler (restart)."""
        return self._force_be

    def next_breakpoint(self, t: float) -> float:
        """First breakpoint strictly after *t* (tstop acts as the last one)."""
        idx = np.searchsorted(self.breakpoints, t, side="right")
        if idx >= self.breakpoints.size:
            return self.tstop
        return float(self.breakpoints[idx])

    def propose(self, t: float) -> tuple[float, bool]:
        """Step to attempt from time *t*.

        Returns ``(h, lands_on_breakpoint)``. The step is clipped so the
        target never overshoots the next breakpoint, and stretched onto
        the breakpoint when it would otherwise leave a sliver behind.
        """
        bp = self.next_breakpoint(t)
        room = bp - t
        if room <= 0:
            raise TimestepError(f"no room to step at t={t} (breakpoint at {bp})")
        h = min(self.h_rec, self.max_step)
        if h >= room * (1.0 - BREAKPOINT_SNAP):
            return room, True
        return h, False

    # -- transitions -------------------------------------------------------------

    def on_accept(self, h_taken: float, verdict: LteVerdict, hit_breakpoint: bool) -> None:
        """Update the recommendation after an accepted point."""
        self._force_be = False
        cap = self.options.step_ratio_max * h_taken
        if verdict.estimated:
            self.h_unclamped = verdict.h_optimal
            h_new = min(verdict.h_optimal, cap)
            self.ratio_limited = verdict.h_optimal > cap
        else:
            self.h_unclamped = float("inf")
            h_new = cap
            self.ratio_limited = True  # growing on faith: ratio is the binding bound
        self.ratio_streak = self.ratio_streak + 1 if self.ratio_limited else 0
        self.h_rec = float(np.clip(h_new, self.min_step, self.max_step))
        if self._rec.enabled:
            self._rec.count("controller.accepts")
            if self.ratio_limited:
                self._rec.count("controller.ratio_limited_accepts")
            self._rec.observe("controller.h_taken", h_taken)
        if hit_breakpoint:
            self.restart()

    def on_reject(self, h_taken: float, verdict: LteVerdict) -> None:
        """Shrink after an LTE rejection; raises below the minimum step."""
        self.rejections += 1
        self.ratio_limited = False  # LTE is binding here, not the ratio bound
        self.ratio_streak = 0
        self.h_unclamped = verdict.h_optimal
        if self._rec.enabled:
            self._rec.count("controller.lte_rejects")
        h_new = max(
            h_taken * self.options.step_shrink,
            min(verdict.h_optimal, 0.9 * h_taken),
        )
        self._set_retry(h_new, RejectReason.LTE)

    def on_newton_failure(self, h_taken: float) -> None:
        """Shrink hard after a Newton convergence failure."""
        self.newton_failures += 1
        self.ratio_limited = False
        self.ratio_streak = 0
        if self._rec.enabled:
            self._rec.count("controller.newton_failures")
        self._set_retry(h_taken * self.options.step_shrink, RejectReason.NEWTON_FAIL)

    def restart(self, h: float | None = None) -> None:
        """Re-enter cold-start mode (after a breakpoint): BE + small step."""
        self._force_be = True
        self.ratio_limited = True  # the collapsed step must ramp back up
        self.ratio_streak = 1
        self.h_unclamped = float("inf")
        if self._rec.enabled:
            self._rec.count("controller.restarts")
        if h is None:
            h = max(self.h_rec * self.options.step_shrink, self.min_step)
        self.h_rec = float(np.clip(h, self.min_step, self.max_step))

    def _set_retry(self, h_new: float, reason: RejectReason) -> None:
        self.last_reject = reason
        if self._rec.enabled:
            self._rec.count(reason.counter)
        if h_new < self.min_step:
            raise TimestepError(
                f"step underflow after {reason.describe}: needed {h_new:.3e}s, "
                f"minimum is {self.min_step:.3e}s"
            )
        self.h_rec = h_new
