"""Local truncation error estimation and SPICE-style step control.

LTE is estimated from divided differences of the *solution* over the
newest point cluster (candidate point included), applied to node-voltage
unknowns. Error constants per method (magnitude of the leading local
error term expressed through the divided difference ``dd_{k+1} ~
x^{(k+1)}/(k+1)!``):

    be    : |LTE| = h^2 * |dd2|              (h^2/2 * x'')
    trap  : |LTE| = (1/2) h^3 * |dd3|        (h^3/12 * x''')
    gear2 : |LTE| = (4/3) h^3 * |dd3|        (2/9  h^3 * x''')

Acceptance compares against ``trtol * (lte_reltol*|x| + lte_abstol)``; the
``trtol`` fudge factor (SPICE default 7) acknowledges that the estimate is
itself noisy. The *optimal* step returned by :func:`lte_verdict` is
deliberately **uncapped** — the sequential controller clamps it with the
consecutive-step ratio bound, while WavePipe's backward pipelining uses
the uncapped value to place its leading point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.integration.history import TimepointHistory, divided_difference
from repro.utils.options import SimOptions

#: |LTE| = ERROR_CONSTANT[method] * h^(k+1) * |dd_(k+1)|
ERROR_CONSTANTS = {"be": 1.0, "trap": 0.5, "gear2": 4.0 / 3.0}

#: Safety factor applied to the LTE-optimal step recommendation.
SAFETY = 0.9

#: Growth factor used when the error estimate is effectively zero.
ZERO_ERROR_GROWTH = 100.0


@dataclass(frozen=True)
class LteVerdict:
    """Outcome of the truncation-error test for one candidate point.

    Attributes:
        accepted: candidate error within tolerance.
        error_ratio: max over unknowns of |LTE| / (trtol * tol); <= 1 means
            accepted. 0.0 when no estimate was possible.
        h_optimal: uncapped step suggestion for the *next* step (or the
            retry, when rejected).
        estimated: False when there were too few points for an estimate
            (the candidate is then accepted by construction).
    """

    accepted: bool
    error_ratio: float
    h_optimal: float
    estimated: bool


def lte_verdict(
    method_used: str,
    order: int,
    history: TimepointHistory,
    t_new: float,
    x_new: np.ndarray,
    voltage_mask: np.ndarray,
    options: SimOptions,
    h_solve: float | None = None,
) -> LteVerdict:
    """Run the truncation-error test on a candidate solution.

    The divided difference spans the candidate plus the newest ``order+1``
    history points. With insufficient history (cold start) the point is
    accepted and a cautious growth suggestion returned.

    Args:
        h_solve: the integration step the candidate was actually solved
            with, when it differs from ``t_new - history.last.t`` —
            WavePipe's backward points integrate from the stage base while
            being verified against a history that already contains their
            accepted siblings.
    """
    h = h_solve if h_solve is not None else t_new - history.last.t
    needed = order + 2  # dd of order k+1 needs k+2 points
    points = [(t_new, x_new)] + [(p.t, p.x) for p in history.newest(needed - 1)]
    if len(points) < needed:
        return LteVerdict(True, 0.0, h * options.step_ratio_max, False)

    dd = divided_difference(points[:needed])
    err = ERROR_CONSTANTS[method_used] * (h ** (order + 1)) * np.abs(dd)

    scale = np.maximum(np.abs(x_new), np.abs(history.last.x))
    tol = options.trtol * (
        options.effective_lte_reltol * scale + options.effective_lte_abstol
    )
    masked_err = err[voltage_mask]
    masked_tol = tol[voltage_mask]
    if masked_err.size == 0:
        return LteVerdict(True, 0.0, h * options.step_ratio_max, False)

    ratio = float(np.max(masked_err / masked_tol))
    if ratio <= 0.0:
        return LteVerdict(True, 0.0, h * ZERO_ERROR_GROWTH, True)

    factor = ratio ** (-1.0 / (order + 1))
    h_optimal = h * min(SAFETY * factor, ZERO_ERROR_GROWTH)
    return LteVerdict(ratio <= 1.0, ratio, h_optimal, True)


def ensemble_lte_verdict(
    method_used: str,
    order: int,
    history: TimepointHistory,
    t_new: float,
    x_new: np.ndarray,
    voltage_mask: np.ndarray,
    options: SimOptions,
    h_solve: float | None = None,
) -> tuple[LteVerdict, np.ndarray]:
    """Per-variant truncation-error test with a max-reduction accept rule.

    The ensemble shares one time grid, so a candidate point is accepted
    only when **every** variant's error ratio passes (max-reduction over
    the ``(K,)`` per-variant ratios), and the next-step suggestion is the
    most conservative variant's optimum (min-reduction over per-variant
    ``h_optimal``). History and *x_new* carry the trailing variant axis;
    all per-unknown formulas match :func:`lte_verdict` elementwise, so
    K=1 reproduces the scalar verdict bit for bit.

    Returns ``(combined verdict, per-variant error ratios)``; the ratio
    array is empty when no estimate was possible.
    """
    h = h_solve if h_solve is not None else t_new - history.last.t
    sims = x_new.shape[1]
    needed = order + 2
    points = [(t_new, x_new)] + [(p.t, p.x) for p in history.newest(needed - 1)]
    if len(points) < needed:
        return LteVerdict(True, 0.0, h * options.step_ratio_max, False), np.zeros(0)

    dd = divided_difference(points[:needed])
    err = ERROR_CONSTANTS[method_used] * (h ** (order + 1)) * np.abs(dd)

    scale = np.maximum(np.abs(x_new), np.abs(history.last.x))
    tol = options.trtol * (
        options.effective_lte_reltol * scale + options.effective_lte_abstol
    )
    masked_err = err[voltage_mask]
    masked_tol = tol[voltage_mask]
    if masked_err.size == 0:
        return LteVerdict(True, 0.0, h * options.step_ratio_max, False), np.zeros(0)

    ratios = np.max(masked_err / masked_tol, axis=0)
    # Per-variant h_optimal in Python floats: C pow and numpy's float64
    # pow can differ in the last ulp, and K=1 must retrace the scalar
    # verdict bit for bit.
    h_opts = np.empty(ratios.shape[0])
    for k in range(ratios.shape[0]):
        ratio_k = float(ratios[k])
        if ratio_k <= 0.0:
            h_opts[k] = h * ZERO_ERROR_GROWTH
        else:
            factor = ratio_k ** (-1.0 / (order + 1))
            h_opts[k] = h * min(SAFETY * factor, ZERO_ERROR_GROWTH)
    worst = float(ratios.max())
    if worst <= 0.0:
        return LteVerdict(True, 0.0, h * ZERO_ERROR_GROWTH, True), ratios
    return (
        LteVerdict(worst <= 1.0, worst, float(h_opts.min()), True),
        ratios,
    )


def predicted_max_step(
    method_used: str,
    order: int,
    history: TimepointHistory,
    voltage_mask: np.ndarray,
    options: SimOptions,
) -> float | None:
    """A-priori LTE-optimal step predicted from history alone.

    Uses the divided difference over the newest ``order+2`` accepted points
    (no candidate) as a frozen estimate of the solution's (k+1)-th
    derivative, and inverts the LTE formula for the step that would just
    meet tolerance. This is the quantity WavePipe's backward pipelining
    uses to decide how far ahead its leading point may reach; every point
    is still verified a posteriori with :func:`lte_verdict`.

    Returns None when history is too short for an estimate.
    """
    needed = order + 2
    if history.era_length < needed:
        return None
    points = [(p.t, p.x) for p in history.newest(needed)]
    dd = divided_difference(points)

    last = history.last
    scale = np.abs(last.x)
    tol = options.trtol * (
        options.effective_lte_reltol * scale + options.effective_lte_abstol
    )
    err_per_h = ERROR_CONSTANTS[method_used] * np.abs(dd[voltage_mask])
    tol_masked = tol[voltage_mask]
    if err_per_h.size == 0:
        return None
    # Step h such that max(err_per_h * h^(k+1) / tol) == 1.
    worst = float(np.max(err_per_h / tol_masked))
    if worst <= 0.0:
        h_ref = history.last_step or 0.0
        return h_ref * ZERO_ERROR_GROWTH if h_ref else None
    return SAFETY * worst ** (-1.0 / (order + 1))
