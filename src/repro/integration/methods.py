"""Variable-step integration schemes (BE, trapezoidal, Gear-2/BDF2).

Each scheme reduces ``dq/dt`` at the new time point to the linear form

    qdot_new = alpha0 * q_new + beta

where ``beta`` collects history terms, so one Newton solve handles every
method uniformly (Jacobian ``G + alpha0*C``).

Order fallback follows SPICE: the first step after a cold start or a
breakpoint uses backward Euler (trap needs a trusted ``qdot`` history,
Gear-2 needs two points), then the configured method takes over. The
*actually used* method is reported so LTE applies the right error constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.integration.history import TimepointHistory

#: Integration order by method name.
METHOD_ORDER = {"be": 1, "trap": 2, "gear2": 2}


@dataclass(frozen=True)
class SchemeCoefficients:
    """Discretisation of dq/dt at one target time.

    Attributes:
        alpha0: coefficient of the unknown q_new.
        beta: constant history vector.
        method_used: the method actually applied after fallbacks.
        order: its integration order.
        h: step from the newest history point to the target.
    """

    alpha0: float
    beta: np.ndarray
    method_used: str
    order: int
    h: float

    def qdot(self, q_new: np.ndarray) -> np.ndarray:
        """Charge derivative at the new point implied by the scheme."""
        return self.alpha0 * q_new + self.beta


def scheme_coefficients(
    method: str,
    history: TimepointHistory,
    t_new: float,
    force_be: bool = False,
) -> SchemeCoefficients:
    """Build the alpha0/beta form for a solve at *t_new*.

    Args:
        method: requested method ("be", "trap", "gear2").
        history: accepted points; the newest anchors the step.
        force_be: restart flag (first step / just after a breakpoint).
    """
    if method not in METHOD_ORDER:
        raise SimulationError(f"unknown integration method {method!r}")
    last = history.last
    h = t_new - last.t
    if h <= 0:
        raise SimulationError(f"non-positive step: t_new={t_new}, front={last.t}")

    if force_be:
        method = "be"
    if method == "gear2" and history.era_length < 2:
        # The second-order formula must not reach across a breakpoint
        # corner (or a cold start) for its older point.
        method = "be"

    if method == "be":
        alpha0 = 1.0 / h
        beta = -last.q / h
        return SchemeCoefficients(alpha0, beta, "be", 1, h)

    if method == "trap":
        alpha0 = 2.0 / h
        beta = -(2.0 / h) * last.q - last.qdot
        return SchemeCoefficients(alpha0, beta, "trap", 2, h)

    # Variable-step BDF2 from Lagrange differentiation at t_new.
    prev = history[-2]
    d1 = t_new - last.t
    d2 = t_new - prev.t
    h2 = last.t - prev.t
    a0 = (d1 + d2) / (d1 * d2)
    a1 = -d2 / (d1 * h2)
    a2 = d1 / (d2 * h2)
    alpha0 = a0
    beta = a1 * last.q + a2 * prev.q
    return SchemeCoefficients(alpha0, beta, "gear2", 2, h)
