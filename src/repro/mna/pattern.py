"""Sparse Jacobian pattern cache.

MNA assembly is the inner loop of a SPICE engine: every Newton iteration
rebuilds the Jacobian ``J = G(x) + alpha0 * C(x)`` from per-device stamps.
Rebuilding a scipy COO matrix each time re-sorts and re-deduplicates the
pattern — wasteful, since the pattern never changes after compilation.

:class:`PatternBuilder` collects the (row, col) positions of every stamp
*slot* once, at compile time, separately for the conductance (G) and
capacitance (C) streams. :meth:`PatternBuilder.finalize` computes the CSC
structure of the union pattern and a scatter map from each slot to its CSC
data index. :meth:`JacobianPattern.assemble` then builds a Jacobian with
two ``np.add.at`` scatters and no sorting.

Ground handling: unknowns are indexed ``0..n-1``; index ``n`` is a *trash*
position. Stamps touching ground write to row/col ``n`` and are scattered
into a sacrificial data slot that never enters the matrix, so device banks
need no ground branches in their inner loops.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import AssemblyError


class SlotRange:
    """Handle to a contiguous run of stamp slots owned by one device bank."""

    __slots__ = ("start", "stop")

    def __init__(self, start: int, stop: int):
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def slice(self) -> slice:
        return slice(self.start, self.stop)


class PatternBuilder:
    """Collects stamp positions during compilation.

    Args:
        size: number of real unknowns; index ``size`` is the trash slot.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise AssemblyError("system must have at least one unknown")
        self.size = size
        self._g_rows: list[np.ndarray] = []
        self._g_cols: list[np.ndarray] = []
        self._c_rows: list[np.ndarray] = []
        self._c_cols: list[np.ndarray] = []
        self._g_count = 0
        self._c_count = 0
        self._finalized = False

    def _check_indices(self, rows: np.ndarray, cols: np.ndarray) -> None:
        if rows.shape != cols.shape:
            raise AssemblyError("stamp rows/cols must have identical shape")
        if rows.size and (rows.min() < 0 or rows.max() > self.size):
            raise AssemblyError("stamp row index out of range")
        if cols.size and (cols.min() < 0 or cols.max() > self.size):
            raise AssemblyError("stamp col index out of range")

    def add_g_entries(self, rows, cols) -> SlotRange:
        """Register conductance-stream stamp positions; returns their slots."""
        if self._finalized:
            raise AssemblyError("pattern already finalized")
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        self._check_indices(rows, cols)
        self._g_rows.append(rows)
        self._g_cols.append(cols)
        handle = SlotRange(self._g_count, self._g_count + rows.size)
        self._g_count += rows.size
        return handle

    def add_c_entries(self, rows, cols) -> SlotRange:
        """Register capacitance-stream stamp positions; returns their slots."""
        if self._finalized:
            raise AssemblyError("pattern already finalized")
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        self._check_indices(rows, cols)
        self._c_rows.append(rows)
        self._c_cols.append(cols)
        handle = SlotRange(self._c_count, self._c_count + rows.size)
        self._c_count += rows.size
        return handle

    def finalize(self, extra_diagonal: bool = True) -> "JacobianPattern":
        """Compute the CSC union pattern and slot scatter maps.

        Args:
            extra_diagonal: include every diagonal position in the pattern
                so gmin regularisation can always be added without a
                pattern change.
        """
        self._finalized = True
        n = self.size

        def concat(parts: list[np.ndarray]) -> np.ndarray:
            if not parts:
                return np.zeros(0, dtype=np.int64)
            return np.concatenate(parts)

        g_rows, g_cols = concat(self._g_rows), concat(self._g_cols)
        c_rows, c_cols = concat(self._c_rows), concat(self._c_cols)

        diag = np.arange(n, dtype=np.int64) if extra_diagonal else np.zeros(0, np.int64)
        all_rows = np.concatenate([g_rows, c_rows, diag])
        all_cols = np.concatenate([g_cols, c_cols, diag])

        valid = (all_rows < n) & (all_cols < n)
        # Linear key in CSC order: column-major.
        keys = all_cols[valid] * np.int64(n) + all_rows[valid]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        nnz = unique_keys.size

        # Map every slot (valid -> its unique position, invalid -> trash nnz).
        slot_targets = np.full(all_rows.size, nnz, dtype=np.int64)
        slot_targets[valid] = inverse

        n_g = g_rows.size
        n_c = c_rows.size
        g_map = slot_targets[:n_g]
        c_map = slot_targets[n_g : n_g + n_c]
        diag_map = slot_targets[n_g + n_c :]

        indices = (unique_keys % n).astype(np.int32)
        col_of = unique_keys // n
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.add.at(indptr, col_of + 1, 1)
        np.cumsum(indptr, out=indptr)

        return JacobianPattern(
            size=n,
            nnz=int(nnz),
            indptr=indptr,
            indices=indices,
            g_map=g_map,
            c_map=c_map,
            diag_map=diag_map,
            n_g_slots=n_g,
            n_c_slots=n_c,
        )


class JacobianPattern:
    """Frozen CSC pattern plus scatter maps for fast Jacobian assembly."""

    def __init__(
        self,
        size: int,
        nnz: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        g_map: np.ndarray,
        c_map: np.ndarray,
        diag_map: np.ndarray,
        n_g_slots: int,
        n_c_slots: int,
    ):
        self.size = size
        self.nnz = nnz
        self.indptr = indptr
        self.indices = indices
        self.g_map = g_map
        self.c_map = c_map
        self.diag_map = diag_map
        self.n_g_slots = n_g_slots
        self.n_c_slots = n_c_slots

    def assemble(
        self,
        g_vals: np.ndarray,
        c_vals: np.ndarray,
        alpha0: float,
        diag_shift: float = 0.0,
    ) -> sp.csc_matrix:
        """Build ``G + alpha0*C (+ diag_shift*I)`` as a CSC matrix.

        *g_vals*/*c_vals* are the full slot value arrays filled by the
        device banks for the current operating point.
        """
        if g_vals.size != self.n_g_slots or c_vals.size != self.n_c_slots:
            raise AssemblyError(
                f"slot value sizes ({g_vals.size}, {c_vals.size}) do not match "
                f"pattern ({self.n_g_slots}, {self.n_c_slots})"
            )
        data = np.zeros(self.nnz + 1)
        np.add.at(data, self.g_map, g_vals)
        if alpha0 != 0.0 and c_vals.size:
            np.add.at(data, self.c_map, alpha0 * c_vals)
        if diag_shift:
            np.add.at(data, self.diag_map, diag_shift)
        return sp.csc_matrix(
            (data[: self.nnz], self.indices, self.indptr),
            shape=(self.size, self.size),
        )

    def workspace(self) -> "AssemblyWorkspace":
        """A reusable in-place assembly buffer bound to this pattern."""
        return AssemblyWorkspace(self)

    def block_workspace(self, sims: int) -> "BlockAssemblyWorkspace":
        """A reusable K-variant ensemble assembly buffer for this pattern."""
        return BlockAssemblyWorkspace(self, sims)


class AssemblyWorkspace:
    """Persistent assembly buffers for one pattern (the fast path).

    :meth:`JacobianPattern.assemble` allocates a fresh data array and a
    fresh ``csc_matrix`` per call — measurable overhead when Newton
    assembles thousands of Jacobians over an unchanging pattern. A
    workspace allocates both once and rewrites the matrix's data in place.

    The returned matrix is therefore *aliased*: a later :meth:`assemble`
    call overwrites it. That is safe for the Newton hot loop, which
    factorises the matrix immediately (the factorisation copies what it
    needs) and never holds two Jacobians at once. Callers that retain
    matrices must use :meth:`JacobianPattern.assemble` instead.

    One workspace per concurrent task (it ships inside the task's
    :class:`~repro.devices.base.EvalOutputs` buffers), so WavePipe tasks
    never share one.
    """

    __slots__ = ("pattern", "_data", "_matrix")

    def __init__(self, pattern: JacobianPattern):
        self.pattern = pattern
        self._data = np.zeros(pattern.nnz + 1)
        # The matrix shares the pattern's indices/indptr arrays; the
        # identity of `indices` doubles as the symbolic-reuse cache key
        # in LinearSolver.
        self._matrix = sp.csc_matrix(
            (self._data[: pattern.nnz], pattern.indices, pattern.indptr),
            shape=(pattern.size, pattern.size),
        )

    def assemble(
        self,
        g_vals: np.ndarray,
        c_vals: np.ndarray,
        alpha0: float,
        diag_shift: float = 0.0,
    ) -> sp.csc_matrix:
        """In-place equivalent of :meth:`JacobianPattern.assemble`."""
        pattern = self.pattern
        data = self._data
        data.fill(0.0)
        np.add.at(data, pattern.g_map, g_vals)
        if alpha0 != 0.0 and c_vals.size:
            np.add.at(data, pattern.c_map, alpha0 * c_vals)
        if diag_shift:
            np.add.at(data, pattern.diag_map, diag_shift)
        return self._matrix


class BlockAssemblyWorkspace:
    """Ensemble assembly: K Jacobians over one shared sparsity pattern.

    One ``np.add.at`` per stream scatters all K variants' slot values
    (shaped ``(n_slots, K)`` per the ensemble device contract) into an
    ``(nnz + 1, K)`` block whose columns are contiguous; each variant's
    column is then copied into that variant's owned CSC data array. The
    copy is needed because scipy will not alias a column of a 2-D block;
    it is O(nnz) per variant, the same order as the scatter itself.

    The K ``csc_matrix`` objects are built once and share the pattern's
    ``indices`` / ``indptr`` arrays, so every variant matrix carries the
    same symbolic-reuse identity key as the scalar fast path
    (:class:`~repro.linalg.solve.LinearSolver` caches the ordering by the
    identity of ``indices``). Matrices are aliased exactly like
    :class:`AssemblyWorkspace` — a later :meth:`assemble` overwrites all
    of them.
    """

    __slots__ = ("pattern", "sims", "_scatter", "_datas", "_matrices")

    def __init__(self, pattern: JacobianPattern, sims: int):
        if sims < 1:
            raise AssemblyError("ensemble workspace needs sims >= 1")
        self.pattern = pattern
        self.sims = sims
        # F-order: per-variant columns are contiguous for the row copies.
        self._scatter = np.zeros((sims, pattern.nnz + 1)).T
        self._datas = [np.zeros(pattern.nnz) for _ in range(sims)]
        self._matrices = [
            sp.csc_matrix(
                (self._datas[k], pattern.indices, pattern.indptr),
                shape=(pattern.size, pattern.size),
            )
            for k in range(sims)
        ]
        # scipy copies the structure arrays at construction; re-alias them
        # so all K matrices share one indices identity (the symbolic-reuse
        # cache key) and the pattern's memory.
        for matrix in self._matrices:
            matrix.indices = pattern.indices
            matrix.indptr = pattern.indptr

    def assemble(
        self,
        g_vals: np.ndarray,
        c_vals: np.ndarray,
        alpha0: float,
        diag_shift: float = 0.0,
    ) -> list[sp.csc_matrix]:
        """Assemble all K variant Jacobians; returns the aliased matrices.

        *g_vals*/*c_vals* are ``(n_slots, K)`` ensemble slot arrays.
        """
        pattern = self.pattern
        if g_vals.shape != (pattern.n_g_slots, self.sims) or c_vals.shape != (
            pattern.n_c_slots,
            self.sims,
        ):
            raise AssemblyError(
                f"ensemble slot value shapes ({g_vals.shape}, {c_vals.shape}) do "
                f"not match pattern ({pattern.n_g_slots}, {pattern.n_c_slots}) "
                f"x sims={self.sims}"
            )
        scatter = self._scatter
        scatter.fill(0.0)
        np.add.at(scatter, pattern.g_map, g_vals)
        if alpha0 != 0.0 and c_vals.size:
            np.add.at(scatter, pattern.c_map, alpha0 * c_vals)
        if diag_shift:
            np.add.at(scatter, pattern.diag_map, diag_shift)
        for k, data in enumerate(self._datas):
            np.copyto(data, scatter[: pattern.nnz, k])
        return self._matrices
