"""The assembled MNA system: residual, charge and Jacobian evaluation.

:class:`MnaSystem` owns the frozen Jacobian pattern and provides stateless
evaluation: every concurrent task allocates its own
:class:`~repro.devices.base.EvalOutputs` buffers via :meth:`make_buffers`
and passes them explicitly, so WavePipe tasks can evaluate the same system
at different time points simultaneously.

Equations solved (residual form):

    F(x, t) = f(x) + dq(x)/dt + s(t) + gshunt*x = 0

where ``dq/dt`` is replaced by the integration scheme's linear form
``alpha0*q(x) + beta`` (beta collects history), and ``gshunt`` is a tiny
diagonal conductance (``options.gmin``) that keeps otherwise-floating
unknowns (e.g. MOS gate nets) non-singular. The gshunt term appears in
both the residual and the Jacobian so Newton's model stays exact.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.devices.base import EvalOutputs
from repro.mna.compiler import CompiledCircuit
from repro.mna.pattern import PatternBuilder


class MnaSystem:
    """Evaluation facade over a compiled circuit."""

    def __init__(self, compiled: CompiledCircuit):
        self.compiled = compiled
        self.n = compiled.n
        self.options = compiled.options
        builder = PatternBuilder(self.n)
        for bank in compiled.banks:
            bank.register(builder)
        self._n_g_slots = builder._g_count
        self._n_c_slots = builder._c_count
        self.pattern = builder.finalize(extra_diagonal=True)
        self.gshunt = compiled.options.gmin
        self.voltage_mask = compiled.voltage_mask
        self.unknown_names = compiled.unknown_names
        self._static_base: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def has_nonlinear(self) -> bool:
        """True when any bank is nonlinear (diode / MOSFET / BJT).

        Newton on a purely linear system converges in one exact step, so
        update damping and junction limiting are skipped entirely.
        """
        return any(
            type(bank).__name__ in ("DiodeBank", "MosfetBank", "BjtBank")
            for bank in self.compiled.banks
        )

    def make_buffers(self, fast_path: bool = False) -> EvalOutputs:
        """Fresh evaluation buffers (one set per concurrent task).

        With *fast_path* the buffers carry the factorisation-reuse
        machinery: static-stamp baselines (linear banks write their
        constant Jacobian entries once, then skip them per eval) and a
        persistent :class:`~repro.mna.pattern.AssemblyWorkspace` for
        in-place Jacobian assembly. Each call returns fresh buffers and
        a fresh workspace, so concurrent tasks still share nothing
        mutable — the baselines are shared but read-only.
        """
        out = EvalOutputs(self.n, self._n_g_slots, self._n_c_slots)
        if fast_path:
            out.enable_static_stamps(*self._static_baselines())
            out.workspace = self.pattern.workspace()
        return out

    def _static_baselines(self) -> tuple[np.ndarray, np.ndarray]:
        """Constant-stamp slot arrays, built once on first fast-path use."""
        if self._static_base is None:
            g = np.zeros(self._n_g_slots)
            c = np.zeros(self._n_c_slots)
            for bank in self.compiled.banks:
                bank.write_static_stamps(g, c)
            self._static_base = (g, c)
        return self._static_base

    def pad(self, x: np.ndarray) -> np.ndarray:
        """Append the ground/trash slot (value 0) to a solution vector."""
        x_full = np.zeros(self.n + 1)
        x_full[: self.n] = x
        return x_full

    def eval(self, x: np.ndarray, t: float, out: EvalOutputs) -> np.ndarray:
        """Evaluate all banks at (x, t); returns the padded x for reuse."""
        out.reset()
        x_full = self.pad(x)
        for bank in self.compiled.banks:
            bank.eval(x_full, t, out)
        return x_full

    def resistive_residual(self, out: EvalOutputs, x: np.ndarray) -> np.ndarray:
        """``f(x) + s(t) + gshunt*x`` (no charge term) from filled buffers."""
        return out.f[: self.n] + out.s[: self.n] + self.gshunt * x

    def charge(self, out: EvalOutputs) -> np.ndarray:
        """Charge vector q(x) from filled buffers."""
        return out.q[: self.n].copy()

    def jacobian(self, out: EvalOutputs, alpha0: float) -> sp.csc_matrix:
        """``G + alpha0*C + gshunt*I`` from filled buffers.

        Fast-path buffers assemble in place into their workspace matrix
        (aliased across calls — Newton factorises it immediately);
        plain buffers build a fresh matrix per call.
        """
        ws = out.workspace
        if ws is not None:
            return ws.assemble(out.g_vals, out.c_vals, alpha0, diag_shift=self.gshunt)
        return self.pattern.assemble(
            out.g_vals, out.c_vals, alpha0, diag_shift=self.gshunt
        )

    def limit(
        self,
        x_proposed: np.ndarray,
        x_previous: np.ndarray,
        changed_cols: np.ndarray | None = None,
    ) -> bool:
        """Run per-device junction limiting on padded vectors, in place.

        *changed_cols* (ensemble mode only) is a ``(K,)`` bool array that
        banks OR-update with the variant columns they altered.
        """
        changed = False
        for bank in self.compiled.banks:
            if bank.limit(x_proposed, x_previous, changed_cols):
                changed = True
        return changed

    @property
    def work_units_per_eval(self) -> float:
        return self.compiled.work_units_per_eval

    def convergence_tolerances(self, options=None) -> np.ndarray:
        """Per-unknown absolute tolerance: vntol for voltages, abstol for currents."""
        opts = options or self.options
        tol = np.full(self.n, opts.abstol)
        tol[self.voltage_mask] = opts.vntol
        return tol
