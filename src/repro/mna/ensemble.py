"""Ensemble compilation: K parameter variants of one topology, one system.

Monte Carlo / PVT variants of a circuit share everything structural —
unknown numbering, device banks, the Jacobian sparsity pattern — and
differ only in per-device parameter values. :func:`ensemble_from_compiled`
exploits that: it verifies K compiled circuits are topologically
identical, stacks each bank's ``ensemble_params`` attributes into
``(n_devices, K)`` arrays, and wraps the result in an
:class:`EnsembleSystem` whose evaluation buffers carry the trailing
``sims`` axis end to end (see the shape contract in
:mod:`repro.devices.base`).

The per-variant :class:`~repro.mna.compiler.CompiledCircuit` objects are
kept alongside the batched system: DC operating points are solved per
variant on the scalar path (homotopy fallbacks mutate bank scale factors,
which must not be shared), and oracle checks compare each variant against
its own sequential run.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import Circuit
from repro.devices.base import EvalOutputs
from repro.errors import SimulationError
from repro.mna.compiler import CompiledCircuit, compile_circuit
from repro.mna.system import MnaSystem
from repro.utils.options import SimOptions


class EnsembleSystem(MnaSystem):
    """MNA evaluation facade over K stacked parameter variants.

    Identical to :class:`~repro.mna.system.MnaSystem` except that every
    buffer gains a trailing ``(..., K)`` axis: ``pad`` produces
    ``(n + 1, K)`` padded solutions, ``make_buffers`` allocates ensemble
    :class:`~repro.devices.base.EvalOutputs`, and ``jacobian`` assembles
    all K variant matrices through one
    :class:`~repro.mna.pattern.BlockAssemblyWorkspace` scatter. The K
    matrices share the pattern's ``indices`` array, so each variant's
    factorisation hits the same symbolic-reuse identity key as the scalar
    fast path.
    """

    def __init__(self, compiled: CompiledCircuit, sims: int):
        super().__init__(compiled)
        self.sims = sims

    def make_buffers(self, fast_path: bool = False) -> EvalOutputs:
        """Fresh ensemble buffers; always carries a block workspace.

        Unlike the scalar path the workspace is unconditional — plain
        :meth:`~repro.mna.pattern.JacobianPattern.assemble` cannot build
        K matrices — but assembly order matches the scalar scatter
        exactly, so K=1 stays bit-identical with *fast_path* on or off.
        """
        out = EvalOutputs(self.n, self._n_g_slots, self._n_c_slots, sims=self.sims)
        if fast_path:
            out.enable_static_stamps(*self._static_baselines())
        out.workspace = self.pattern.block_workspace(self.sims)
        return out

    def _static_baselines(self) -> tuple[np.ndarray, np.ndarray]:
        if self._static_base is None:
            g = np.zeros((self._n_g_slots, self.sims))
            c = np.zeros((self._n_c_slots, self.sims))
            for bank in self.compiled.banks:
                bank.write_static_stamps(g, c)
            self._static_base = (g, c)
        return self._static_base

    def pad(self, x: np.ndarray) -> np.ndarray:
        """Append the ground/trash row (zeros) to an ``(n, K)`` solution."""
        x_full = np.zeros((self.n + 1, self.sims))
        x_full[: self.n] = x
        return x_full

    def jacobian(self, out: EvalOutputs, alpha0: float):
        """All K variant Jacobians ``G_k + alpha0*C_k + gshunt*I`` (aliased)."""
        return out.workspace.assemble(
            out.g_vals, out.c_vals, alpha0, diag_shift=self.gshunt
        )


@dataclass
class EnsembleCompilation:
    """An ensemble system plus its per-variant scalar compilations."""

    system: EnsembleSystem
    variants: list[CompiledCircuit]

    @property
    def sims(self) -> int:
        return len(self.variants)


def _check_same_topology(compiled: list[CompiledCircuit]) -> None:
    ref = compiled[0]
    for k, other in enumerate(compiled[1:], start=1):
        if other.n != ref.n or other.unknown_names != ref.unknown_names:
            raise SimulationError(
                f"ensemble variant {k} has different unknowns than variant 0 "
                f"({other.n} vs {ref.n}); ensembles require identical topology"
            )
        if other.initial_conditions != ref.initial_conditions:
            raise SimulationError(
                f"ensemble variant {k} has different initial conditions than "
                "variant 0; ensembles require identical topology"
            )
        if len(other.banks) != len(ref.banks) or any(
            type(ob) is not type(rb) or ob.count != rb.count or ob.names != rb.names
            for ob, rb in zip(other.banks, ref.banks)
        ):
            raise SimulationError(
                f"ensemble variant {k} has different device banks than variant 0; "
                "ensembles require identical topology"
            )
        for ob, rb in zip(other.banks, ref.banks):
            for attr, val in vars(rb).items():
                if isinstance(val, np.ndarray) and val.dtype == np.int64:
                    if not np.array_equal(val, getattr(ob, attr)):
                        raise SimulationError(
                            f"ensemble variant {k}: bank {type(rb).__name__} "
                            f"index array {attr!r} differs from variant 0; "
                            "ensembles require identical topology"
                        )


def _ensemble_bank(variant_banks: list, sims: int):
    """One bank evaluating K variants: stack the jitterable parameters."""
    ref = variant_banks[0]
    ref.ensure_ensemble(sims)
    bank = copy.copy(ref)
    for attr in ref.ensemble_params:
        bank_vals = [np.asarray(getattr(vb, attr), dtype=float) for vb in variant_banks]
        setattr(bank, attr, np.stack(bank_vals, axis=1))
    bank.sims = sims
    return bank


def ensemble_from_compiled(compiled: list[CompiledCircuit]) -> EnsembleCompilation:
    """Batch K topologically-identical compiled circuits into one system.

    Raises :class:`~repro.errors.SimulationError` when the variants do not
    share a topology or a bank type does not support ensemble evaluation.
    """
    if not compiled:
        raise SimulationError("ensemble needs at least one variant")
    sims = len(compiled)
    _check_same_topology(compiled)

    base = copy.copy(compiled[0])
    banks = []
    vsource = isource = None
    for i, ref_bank in enumerate(compiled[0].banks):
        bank = _ensemble_bank([c.banks[i] for c in compiled], sims)
        banks.append(bank)
        if ref_bank is compiled[0].vsource_bank:
            vsource = bank
        if ref_bank is compiled[0].isource_bank:
            isource = bank
    base.banks = banks
    base.vsource_bank = vsource
    base.isource_bank = isource
    if hasattr(base, "_eval_cost_by_class"):
        del base._eval_cost_by_class

    return EnsembleCompilation(system=EnsembleSystem(base, sims), variants=compiled)


def compile_ensemble(
    circuits: list[Circuit], options: SimOptions | None = None
) -> EnsembleCompilation:
    """Compile K same-topology circuit variants into one ensemble system."""
    opts = options or SimOptions()
    return ensemble_from_compiled([compile_circuit(c, opts) for c in circuits])
