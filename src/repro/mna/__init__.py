"""Modified nodal analysis: compiler, pattern cache, assembly."""
