"""Circuit compiler: component records -> vectorised device banks + index maps.

Compilation performs, in order:

1. Preprocessing — expand model features that need extra topology (a diode
   model card with ``rs > 0`` becomes an internal node plus an explicit
   series resistor).
2. Unknown numbering — node voltages first (``0 .. n_nodes-1``, in first-
   appearance order), then one branch current per inductor, voltage source,
   VCVS and CCVS. Ground maps to the trash index ``n_unknowns``.
3. Bank construction — one :class:`~repro.devices.base.DeviceBank` per
   device physics present in the circuit.

The result, :class:`CompiledCircuit`, is immutable and shared (read-only)
by every concurrent WavePipe task.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuit.circuit import Circuit, canonical_node
from repro.circuit.components import (
    Bjt,
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    MutualInductance,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.devices.bjt import BjtBank
from repro.devices.diode import DiodeBank
from repro.devices.linear import (
    CapacitorBank,
    InductorBank,
    MutualInductanceBank,
    ResistorBank,
)
from repro.devices.mosfet import MosfetBank
from repro.devices.sources import (
    CccsBank,
    CcvsBank,
    CurrentSourceBank,
    VccsBank,
    VcvsBank,
    VoltageSourceBank,
)
from repro.errors import CircuitError
from repro.utils.options import SimOptions


class CompiledCircuit:
    """Frozen, solver-ready form of a circuit.

    Attributes:
        n_nodes / n_branches / n: unknown counts (n = total).
        node_index: node name -> unknown index (ground absent).
        branch_index: component name -> branch-current unknown index.
        unknown_names: diagnostic label per unknown ("v(out)", "i(V1)").
        voltage_mask: boolean per unknown, True for node voltages (used by
            LTE, which is applied to voltage-like states).
        banks: all device banks.
        breakpoints: sorted source-waveform corner times builder
            (:meth:`collect_breakpoints`).
    """

    def __init__(self, circuit: Circuit, options: SimOptions):
        circuit.validate()
        self.title = circuit.title
        self.options = options
        components = _preprocess(list(circuit.components))

        # ---- unknown numbering -------------------------------------------
        node_index: dict[str, int] = {}
        for comp in components:
            for node in comp.nodes:
                node = canonical_node(node)
                if node != "0" and node not in node_index:
                    node_index[node] = len(node_index)
        self.n_nodes = len(node_index)

        branch_owners = [
            c for c in components if isinstance(c, (Inductor, VoltageSource, Vcvs, Ccvs))
        ]
        self.branch_index = {
            c.name: self.n_nodes + k for k, c in enumerate(branch_owners)
        }
        self.n_branches = len(branch_owners)
        self.n = self.n_nodes + self.n_branches
        self.node_index = node_index
        self._ground = self.n  # trash slot

        self.unknown_names = [f"v({name})" for name in node_index]
        self.unknown_names += [f"i({c.name})" for c in branch_owners]
        self.voltage_mask = np.zeros(self.n, dtype=bool)
        self.voltage_mask[: self.n_nodes] = True

        # ---- bank construction -------------------------------------------
        self.banks = []
        self.vsource_bank: VoltageSourceBank | None = None
        self.isource_bank: CurrentSourceBank | None = None
        self._build_banks(components, options)

        self._components = components
        self._waveforms = [
            c.waveform
            for c in components
            if isinstance(c, (VoltageSource, CurrentSource))
        ]
        self.initial_conditions = _collect_initial_conditions(components)

    # -- index helpers ------------------------------------------------------

    def nidx(self, node: str) -> int:
        """Unknown index of *node* (ground maps to the trash slot)."""
        node = canonical_node(node)
        if node == "0":
            return self._ground
        try:
            return self.node_index[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r} in circuit {self.title!r}") from None

    def node_voltage_index(self, node: str) -> int:
        """Strict variant of :meth:`nidx` that rejects ground."""
        idx = self.nidx(node)
        if idx == self._ground:
            raise CircuitError("ground has no unknown index (voltage is 0)")
        return idx

    def branch_current_index(self, name: str) -> int:
        try:
            return self.branch_index[name]
        except KeyError:
            raise CircuitError(f"component {name!r} has no branch current") from None

    # -- misc ----------------------------------------------------------------

    def collect_breakpoints(self, tstop: float) -> np.ndarray:
        """Sorted unique source-corner times in ``(0, tstop]``."""
        points: set[float] = set()
        for wf in self._waveforms:
            points.update(bp for bp in wf.breakpoints(tstop) if 0.0 < bp <= tstop)
        points.add(tstop)
        return np.array(sorted(points))

    @property
    def work_units_per_eval(self) -> float:
        """Cost-model work units for one full system evaluation."""
        return sum(bank.work_units for bank in self.banks) + 0.01 * self.n

    def eval_cost_by_class(self) -> dict[str, float]:
        """Per-device-class split of :attr:`work_units_per_eval`.

        Keys follow :meth:`stats` naming (``resistors``, ``diodes``...)
        plus ``overhead`` for the per-unknown gather/scatter charge. The
        values sum to ``work_units_per_eval``; span tracing scales them
        by the iteration count to attribute device-eval cost.
        """
        cached = getattr(self, "_eval_cost_by_class", None)
        if cached is None:
            cached = {
                type(bank).__name__.replace("Bank", "s").lower(): bank.work_units
                for bank in self.banks
            }
            cached["overhead"] = 0.01 * self.n
            self._eval_cost_by_class = cached
        return cached

    def stats(self) -> dict[str, int | str]:
        """Summary row for Table R1."""
        counts: dict[str, int | str] = {"unknowns": self.n, "nodes": self.n_nodes}
        for bank in self.banks:
            counts[type(bank).__name__.replace("Bank", "s").lower()] = bank.count
        return counts

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({self.title!r}, n={self.n}, "
            f"banks={[type(b).__name__ for b in self.banks]})"
        )

    # -- internal -------------------------------------------------------------

    def _build_banks(self, components, options: SimOptions) -> None:
        nidx = self.nidx
        gmin = options.gmin

        def of_type(kind):
            return [c for c in components if isinstance(c, kind)]

        resistors = of_type(Resistor)
        if resistors:
            self.banks.append(
                ResistorBank(
                    [c.name for c in resistors],
                    [nidx(c.a) for c in resistors],
                    [nidx(c.b) for c in resistors],
                    [c.resistance for c in resistors],
                )
            )
        capacitors = of_type(Capacitor)
        if capacitors:
            self.banks.append(
                CapacitorBank(
                    [c.name for c in capacitors],
                    [nidx(c.a) for c in capacitors],
                    [nidx(c.b) for c in capacitors],
                    [c.capacitance for c in capacitors],
                )
            )
        inductors = of_type(Inductor)
        if inductors:
            self.banks.append(
                InductorBank(
                    [c.name for c in inductors],
                    [nidx(c.a) for c in inductors],
                    [nidx(c.b) for c in inductors],
                    [self.branch_index[c.name] for c in inductors],
                    [c.inductance for c in inductors],
                )
            )
        mutuals = of_type(MutualInductance)
        if mutuals:
            inductance_of = {
                c.name: c.inductance for c in components if isinstance(c, Inductor)
            }
            import math

            self.banks.append(
                MutualInductanceBank(
                    [c.name for c in mutuals],
                    [self.branch_index[c.inductor1] for c in mutuals],
                    [self.branch_index[c.inductor2] for c in mutuals],
                    [
                        c.coupling
                        * math.sqrt(
                            inductance_of[c.inductor1] * inductance_of[c.inductor2]
                        )
                        for c in mutuals
                    ],
                )
            )
        vsources = of_type(VoltageSource)
        if vsources:
            self.vsource_bank = VoltageSourceBank(
                [c.name for c in vsources],
                [nidx(c.plus) for c in vsources],
                [nidx(c.minus) for c in vsources],
                [self.branch_index[c.name] for c in vsources],
                [c.waveform for c in vsources],
            )
            self.banks.append(self.vsource_bank)
        isources = of_type(CurrentSource)
        if isources:
            self.isource_bank = CurrentSourceBank(
                [c.name for c in isources],
                [nidx(c.plus) for c in isources],
                [nidx(c.minus) for c in isources],
                [c.waveform for c in isources],
            )
            self.banks.append(self.isource_bank)
        vcvs = of_type(Vcvs)
        if vcvs:
            self.banks.append(
                VcvsBank(
                    [c.name for c in vcvs],
                    [nidx(c.plus) for c in vcvs],
                    [nidx(c.minus) for c in vcvs],
                    [nidx(c.ctrl_plus) for c in vcvs],
                    [nidx(c.ctrl_minus) for c in vcvs],
                    [self.branch_index[c.name] for c in vcvs],
                    [c.gain for c in vcvs],
                )
            )
        vccs = of_type(Vccs)
        if vccs:
            self.banks.append(
                VccsBank(
                    [c.name for c in vccs],
                    [nidx(c.plus) for c in vccs],
                    [nidx(c.minus) for c in vccs],
                    [nidx(c.ctrl_plus) for c in vccs],
                    [nidx(c.ctrl_minus) for c in vccs],
                    [c.transconductance for c in vccs],
                )
            )
        cccs = of_type(Cccs)
        if cccs:
            self.banks.append(
                CccsBank(
                    [c.name for c in cccs],
                    [nidx(c.plus) for c in cccs],
                    [nidx(c.minus) for c in cccs],
                    [self.branch_index[c.ctrl_source] for c in cccs],
                    [c.gain for c in cccs],
                )
            )
        ccvs = of_type(Ccvs)
        if ccvs:
            self.banks.append(
                CcvsBank(
                    [c.name for c in ccvs],
                    [nidx(c.plus) for c in ccvs],
                    [nidx(c.minus) for c in ccvs],
                    [self.branch_index[c.ctrl_source] for c in ccvs],
                    [self.branch_index[c.name] for c in ccvs],
                    [c.transresistance for c in ccvs],
                )
            )
        diodes = of_type(Diode)
        if diodes:
            self.banks.append(
                DiodeBank(
                    [c.name for c in diodes],
                    [nidx(c.anode) for c in diodes],
                    [nidx(c.cathode) for c in diodes],
                    [c.model for c in diodes],
                    [c.area for c in diodes],
                    gmin,
                )
            )
        mosfets = of_type(Mosfet)
        if mosfets:
            self.banks.append(
                MosfetBank(
                    [c.name for c in mosfets],
                    [nidx(c.drain) for c in mosfets],
                    [nidx(c.gate) for c in mosfets],
                    [nidx(c.source) for c in mosfets],
                    [nidx(c.bulk) for c in mosfets],
                    [c.model for c in mosfets],
                    [c.w for c in mosfets],
                    [c.l for c in mosfets],
                    gmin,
                )
            )
        bjts = of_type(Bjt)
        if bjts:
            self.banks.append(
                BjtBank(
                    [c.name for c in bjts],
                    [nidx(c.collector) for c in bjts],
                    [nidx(c.base) for c in bjts],
                    [nidx(c.emitter) for c in bjts],
                    [c.model for c in bjts],
                    [c.area for c in bjts],
                    gmin,
                )
            )


def _preprocess(components: list) -> list:
    """Expand compiled-away model features (diode series resistance)."""
    expanded = []
    for comp in components:
        if isinstance(comp, Diode) and comp.model.rs > 0:
            internal = f"{comp.name}#rs"
            expanded.append(
                Resistor(f"{comp.name}#rser", comp.anode, internal, comp.model.rs / comp.area)
            )
            model = dataclasses.replace(comp.model, rs=0.0)
            expanded.append(dataclasses.replace(comp, anode=internal, model=model))
        else:
            expanded.append(comp)
    return expanded


def _collect_initial_conditions(components) -> dict[str, float]:
    """UIC support: map cap/inductor ``ic`` fields onto unknowns.

    A capacitor IC is applied as a node voltage when one terminal is
    ground (the common usage); floating-cap ICs are rejected early rather
    than silently ignored. Inductor ICs set the branch current directly.
    """
    ics: dict[str, float] = {}
    for comp in components:
        if isinstance(comp, Capacitor) and comp.ic is not None:
            a, b = canonical_node(comp.a), canonical_node(comp.b)
            if b == "0":
                ics[f"v:{a}"] = comp.ic
            elif a == "0":
                ics[f"v:{b}"] = -comp.ic
            else:
                raise CircuitError(
                    f"{comp.name}: initial condition on a floating capacitor is "
                    "not supported; specify node ICs via transient(..., node_ics=)"
                )
        elif isinstance(comp, Inductor) and comp.ic is not None:
            ics[f"i:{comp.name}"] = comp.ic
    return ics


def compile_circuit(circuit: Circuit, options: SimOptions | None = None) -> CompiledCircuit:
    """Compile *circuit* with *options* (defaults applied when omitted)."""
    return CompiledCircuit(circuit, options or SimOptions())
