"""Sequential LTE-controlled transient analysis (the WavePipe baseline).

This is the reference SPICE loop the paper parallelises: DC operating
point, then one Newton solve per time point with predictor initial
guesses, truncation-error acceptance, shrink-and-retry, and breakpoint
restarts. WavePipe reuses the same building blocks
(:func:`solve_timepoint`, :func:`accept_point`) so sequential and
pipelined runs are numerically comparable point for point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.circuit import Circuit
from repro.errors import TimestepError
from repro.instrument.events import (
    DCOP,
    LTE_REJECT,
    OUTCOME_ACCEPTED,
    OUTCOME_LTE_REJECT,
    OUTCOME_NEWTON_FAIL,
    RUN,
    STEP_ACCEPT,
    TIMESTEP,
)
from repro.instrument.metrics import RunMetrics
from repro.instrument.recorder import resolve_recorder
from repro.integration.controller import StepController
from repro.integration.history import Timepoint, TimepointHistory
from repro.integration.lte import LteVerdict, lte_verdict
from repro.integration.methods import SchemeCoefficients, scheme_coefficients
from repro.linalg.solve import LinearSolver
from repro.mna.compiler import CompiledCircuit, compile_circuit
from repro.mna.system import MnaSystem
from repro.solver.dcop import solve_operating_point
from repro.solver.newton import NewtonResult, newton_solve
from repro.utils.options import SimOptions

#: Fraction of tstop considered "reached the end".
END_SLACK = 1e-12

#: Hard cap on attempts (reject/retry cycles) per simulation, a runaway guard.
MAX_ATTEMPTS_FACTOR = 200


@dataclass
class PointSolution:
    """One attempted time point: Newton outcome plus its integration scheme."""

    t: float
    result: NewtonResult
    scheme: SchemeCoefficients

    @property
    def converged(self) -> bool:
        return self.result.converged

    def to_timepoint(self) -> Timepoint:
        """Package as an accepted history point (requires convergence)."""
        return Timepoint(
            t=self.t, x=self.result.x, q=self.result.q, qdot=self.result.qdot
        )


def solve_timepoint(
    system: MnaSystem,
    history: TimepointHistory,
    t_new: float,
    options: SimOptions,
    force_be: bool,
    buffers=None,
    solver: LinearSolver | None = None,
    x_guess: np.ndarray | None = None,
    iter_cap: int | None = None,
) -> PointSolution:
    """Newton-solve the circuit at *t_new* against *history*.

    The initial guess defaults to the polynomial predictor. The returned
    solution carries q and qdot so it can be appended to a history
    directly. Stateless with respect to *system*: safe for concurrent
    WavePipe tasks, each with its own *buffers* and *solver*.
    """
    buffers = (
        buffers
        if buffers is not None
        else system.make_buffers(fast_path=options.jacobian_reuse)
    )
    scheme = scheme_coefficients(options.method, history, t_new, force_be=force_be)
    if x_guess is None:
        if options.newton_guess == "predictor":
            x_guess = history.predict(t_new, options.predictor_order)
        else:
            x_guess = history.last.x
    result = newton_solve(
        system,
        t_new,
        scheme.alpha0,
        scheme.beta,
        x_guess,
        options,
        out=buffers,
        solver=solver,
        iter_cap=iter_cap,
    )
    if result.converged:
        system.eval(result.x, t_new, buffers)
        result.q = system.charge(buffers)
        result.qdot = scheme.qdot(result.q)
    return PointSolution(t_new, result, scheme)


def accept_point(
    system: MnaSystem,
    history: TimepointHistory,
    solution: PointSolution,
    options: SimOptions,
) -> LteVerdict:
    """Run the truncation-error test for a converged point."""
    return lte_verdict(
        solution.scheme.method_used,
        solution.scheme.order,
        history,
        solution.t,
        solution.result.x,
        system.voltage_mask,
        options,
        h_solve=solution.scheme.h,
    )


@dataclass
class TransientStats:
    """Cost accounting for one transient run (sequential or pipelined).

    Wall time is split at the phase boundary the cost model also splits
    at: ``dcop_seconds`` covers the DC operating point (inherently
    serial), ``tran_seconds`` the time-stepping loop (what pipelining
    accelerates). The historical ``wall_seconds`` remains as the derived
    sum.
    """

    accepted_points: int = 0
    rejected_points: int = 0
    newton_failures: int = 0
    newton_iterations: int = 0
    work_units: float = 0.0
    dc_work_units: float = 0.0
    dcop_seconds: float = 0.0
    tran_seconds: float = 0.0
    lu_factors: int = 0
    lu_refactors: int = 0
    lu_solves: int = 0
    lu_reuse_hits: int = 0
    bypass_fallbacks: int = 0
    extra: dict = field(default_factory=dict)

    def charge_lu(self, result: NewtonResult) -> None:
        """Accumulate one Newton solve's linear-solver cost breakdown."""
        self.lu_factors += result.lu_factors
        self.lu_refactors += result.lu_refactors
        self.lu_solves += result.lu_solves
        self.lu_reuse_hits += result.lu_reuse_hits
        self.bypass_fallbacks += result.bypass_fallbacks

    @property
    def wall_seconds(self) -> float:
        """Total wall time: operating point plus transient loop."""
        return self.dcop_seconds + self.tran_seconds

    @property
    def total_work(self) -> float:
        """Serial work including the operating point."""
        return self.work_units + self.dc_work_units


@dataclass
class TransientResult:
    """Waveforms plus diagnostics of one transient run."""

    waveforms: "WaveformSet"
    stats: TransientStats
    times: np.ndarray
    step_sizes: np.ndarray
    options: SimOptions
    metrics: RunMetrics | None = None

    @property
    def final_time(self) -> float:
        return float(self.times[-1])


def _initial_solution(
    system: MnaSystem,
    options: SimOptions,
    uic: bool,
    node_ics: dict[str, float] | None,
    stats: TransientStats,
) -> tuple[np.ndarray, np.ndarray]:
    """Starting (x0, q0) from the operating point or initial conditions.

    Also books the phase's wall time into ``stats.dcop_seconds`` and
    emits the ``dcop`` trace event when a recorder is attached.
    """
    compiled = system.compiled
    rec = resolve_recorder(options.instrument)
    started = time.perf_counter()
    if not uic:
        op = solve_operating_point(system, options)
        stats.dc_work_units = op.work_units
        stats.newton_iterations += op.iterations
        stats.lu_factors += op.lu_factors
        stats.lu_refactors += op.lu_refactors
        stats.lu_solves += op.lu_solves
        stats.lu_reuse_hits += op.lu_reuse_hits
        stats.dcop_seconds = time.perf_counter() - started
        if rec.enabled:
            rec.emit_span(
                DCOP,
                ts=rec.clock() - stats.dcop_seconds,
                dur=stats.dcop_seconds,
                t_sim=0.0,
                cost=op.work_units,
                strategy=op.strategy,
                iterations=op.iterations,
                work_units=op.work_units,
            )
        return op.x, op.q
    x0 = np.zeros(system.n)
    for key, value in compiled.initial_conditions.items():
        kind, _, name = key.partition(":")
        if kind == "v":
            x0[compiled.node_voltage_index(name)] = value
        else:
            x0[compiled.branch_current_index(name)] = value
    for node, value in (node_ics or {}).items():
        x0[compiled.node_voltage_index(node)] = value
    out = system.make_buffers()
    system.eval(x0, 0.0, out)
    q0 = system.charge(out)
    stats.dcop_seconds = time.perf_counter() - started
    return x0, q0


def run_transient(
    compiled: CompiledCircuit | Circuit,
    tstop: float,
    tstep: float | None = None,
    options: SimOptions | None = None,
    uic: bool = False,
    node_ics: dict[str, float] | None = None,
    instrument=None,
) -> TransientResult:
    """Sequential transient simulation from 0 to *tstop*.

    Args:
        compiled: a circuit or an already-compiled circuit.
        tstep: suggested output/initial step (SPICE ``.tran`` tstep); only
            influences the first step, not output density.
        uic: skip the operating point and start from initial conditions.
        node_ics: extra initial node voltages for ``uic`` runs.
        instrument: optional :class:`~repro.instrument.Recorder` (threaded
            into ``options.instrument``); the run's events and counters
            land there and the result's ``metrics`` gains its counters.
    """
    if isinstance(compiled, Circuit):
        compiled = compile_circuit(compiled, options)
    options = options or compiled.options
    if instrument is not None:
        options = options.replace(instrument=instrument)
    rec = resolve_recorder(options.instrument)
    tracing = rec.enabled
    system = MnaSystem(compiled)
    stats = TransientStats()
    started = time.perf_counter()
    run_sid = rec.begin_span(RUN, kind="sequential") if tracing else 0

    x0, q0 = _initial_solution(system, options, uic, node_ics, stats)
    history = TimepointHistory()
    history.append(Timepoint(0.0, x0, q0, np.zeros(system.n)))

    h0 = options.first_step_fraction * (tstep if tstep else tstop / 50.0)
    controller = StepController(
        options, tstop, h0, compiled.collect_breakpoints(tstop)
    )

    rec_times = [0.0]
    rec_x = [x0]
    step_sizes: list[float] = []
    buffers = system.make_buffers(fast_path=options.jacobian_reuse)
    solver = LinearSolver(system.unknown_names)

    t = 0.0
    attempts = 0
    max_attempts = MAX_ATTEMPTS_FACTOR * max(int(tstop / h0), 1000)
    while t < tstop * (1.0 - END_SLACK):
        attempts += 1
        if attempts > max_attempts:
            raise TimestepError(
                f"attempt budget exhausted at t={t:.3e}s "
                f"({stats.accepted_points} accepted, {stats.rejected_points} rejected)"
            )
        h, hits_bp = controller.propose(t)
        step_sid = rec.begin_span(TIMESTEP, t_sim=t + h, h=h) if tracing else 0
        solution = solve_timepoint(
            system, history, t + h, options, controller.force_be, buffers, solver
        )
        stats.work_units += solution.result.work_units
        stats.newton_iterations += solution.result.iterations
        stats.charge_lu(solution.result)
        if not solution.converged:
            stats.newton_failures += 1
            if tracing:
                rec.end_span(
                    step_sid,
                    outcome=OUTCOME_NEWTON_FAIL,
                    cost=solution.result.work_units,
                )
            controller.on_newton_failure(h)
            continue

        verdict = accept_point(system, history, solution, options)
        if not verdict.accepted:
            stats.rejected_points += 1
            if tracing:
                rec.end_span(
                    step_sid,
                    outcome=OUTCOME_LTE_REJECT,
                    cost=solution.result.work_units,
                )
                rec.count("lte.rejects")
                rec.event(
                    LTE_REJECT, t_sim=solution.t, h=h, h_optimal=verdict.h_optimal
                )
            controller.on_reject(h, verdict)
            continue

        history.append(solution.to_timepoint())
        controller.on_accept(h, verdict, hits_bp)
        if hits_bp:
            history.mark_era()
        t = solution.t
        stats.accepted_points += 1
        rec_times.append(t)
        rec_x.append(solution.result.x)
        step_sizes.append(h)
        if tracing:
            rec.end_span(
                step_sid, outcome=OUTCOME_ACCEPTED, cost=solution.result.work_units
            )
            rec.count("points.accepted")
            rec.observe("step.h_accepted", h)
            rec.event(STEP_ACCEPT, t_sim=t, h=h)

    stats.tran_seconds = time.perf_counter() - started - stats.dcop_seconds
    if tracing:
        rec.end_span(
            run_sid, cost=stats.total_work, accepted=stats.accepted_points
        )
    metrics = RunMetrics.from_stats(
        stats, scheme="sequential", threads=1, recorder=rec if tracing else None
    )
    return TransientResult(
        waveforms=_build_waveforms(system, rec_times, rec_x),
        stats=stats,
        times=np.array(rec_times),
        step_sizes=np.array(step_sizes),
        options=options,
        metrics=metrics,
    )


def _build_waveforms(system: MnaSystem, times, xs) -> "WaveformSet":
    from repro.waveform.waveform import WaveformSet

    matrix = np.vstack(xs)
    data = {name: matrix[:, i] for i, name in enumerate(system.unknown_names)}
    return WaveformSet(np.asarray(times), data)
