"""Sequential transient engine (the WavePipe baseline)."""
