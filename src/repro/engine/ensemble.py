"""Ensemble transient engine: K parameter variants per solve.

Runs the sequential LTE-controlled loop of
:mod:`repro.engine.transient` over an
:class:`~repro.mna.ensemble.EnsembleSystem`: one shared time grid, one
lockstep Newton solve per candidate point
(:func:`~repro.solver.ensemble.ensemble_newton_solve`), per-variant LTE
ratios combined with a max-reduction accept rule
(:func:`~repro.integration.lte.ensemble_lte_verdict`). DC operating
points stay on the scalar path — homotopy fallbacks mutate per-variant
bank state — and are stacked into the ``(n, K)`` starting state.

The control flow mirrors :func:`~repro.engine.transient.run_transient`
statement for statement (same initial step, attempt budget, breakpoint
handling and controller transitions), so a K=1 ensemble retraces the
sequential run bit for bit, with factorisation reuse on or off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import Circuit
from repro.errors import TimestepError
from repro.instrument.events import (
    DCOP,
    LTE_REJECT,
    OUTCOME_ACCEPTED,
    OUTCOME_LTE_REJECT,
    OUTCOME_NEWTON_FAIL,
    RUN,
    STEP_ACCEPT,
    TIMESTEP,
)
from repro.instrument.metrics import RunMetrics
from repro.instrument.recorder import resolve_recorder
from repro.engine.transient import (
    END_SLACK,
    MAX_ATTEMPTS_FACTOR,
    TransientResult,
    TransientStats,
)
from repro.integration.controller import StepController
from repro.integration.history import Timepoint, TimepointHistory
from repro.integration.lte import LteVerdict, ensemble_lte_verdict
from repro.integration.methods import SchemeCoefficients, scheme_coefficients
from repro.linalg.solve import BlockSolver
from repro.mna.compiler import CompiledCircuit
from repro.mna.ensemble import (
    EnsembleCompilation,
    compile_ensemble,
    ensemble_from_compiled,
)
from repro.mna.system import MnaSystem
from repro.solver.dcop import solve_operating_point
from repro.solver.ensemble import EnsembleNewtonResult, ensemble_newton_solve
from repro.utils.options import SimOptions
from repro.waveform.waveform import WaveformSet


@dataclass
class EnsemblePointSolution:
    """One attempted ensemble time point: lockstep Newton outcome + scheme."""

    t: float
    result: EnsembleNewtonResult
    scheme: SchemeCoefficients

    @property
    def converged(self) -> bool:
        return self.result.converged

    def to_timepoint(self) -> Timepoint:
        """Package as an accepted history point (requires convergence)."""
        return Timepoint(
            t=self.t, x=self.result.x, q=self.result.q, qdot=self.result.qdot
        )


def solve_ensemble_timepoint(
    system,
    history: TimepointHistory,
    t_new: float,
    options: SimOptions,
    force_be: bool,
    buffers=None,
    solver: BlockSolver | None = None,
    x_guess: np.ndarray | None = None,
    iter_cap: int | None = None,
) -> EnsemblePointSolution:
    """Lockstep Newton-solve all K variants at *t_new* against *history*.

    The ensemble analogue of
    :func:`~repro.engine.transient.solve_timepoint`: the history carries
    ``(n, K)`` solutions and charges, so the predictor, the scheme's
    ``beta`` and the converged charge derivative all inherit the variant
    axis elementwise.
    """
    buffers = (
        buffers
        if buffers is not None
        else system.make_buffers(fast_path=options.jacobian_reuse)
    )
    scheme = scheme_coefficients(options.method, history, t_new, force_be=force_be)
    if x_guess is None:
        if options.newton_guess == "predictor":
            x_guess = history.predict(t_new, options.predictor_order)
        else:
            x_guess = history.last.x
    result = ensemble_newton_solve(
        system,
        t_new,
        scheme.alpha0,
        scheme.beta,
        x_guess,
        options,
        out=buffers,
        solver=solver,
        iter_cap=iter_cap,
    )
    if result.converged:
        system.eval(result.x, t_new, buffers)
        result.q = system.charge(buffers)
        result.qdot = scheme.qdot(result.q)
    return EnsemblePointSolution(t_new, result, scheme)


def accept_ensemble_point(
    system,
    history: TimepointHistory,
    solution: EnsemblePointSolution,
    options: SimOptions,
) -> tuple[LteVerdict, np.ndarray]:
    """Max-reduction truncation-error test for a converged ensemble point."""
    return ensemble_lte_verdict(
        solution.scheme.method_used,
        solution.scheme.order,
        history,
        solution.t,
        solution.result.x,
        system.voltage_mask,
        options,
        h_solve=solution.scheme.h,
    )


@dataclass
class EnsembleTransientResult:
    """Per-variant transient results sharing one adaptive time grid.

    ``variants[k]`` is an ordinary
    :class:`~repro.engine.transient.TransientResult` whose waveforms are
    variant *k*'s columns of the lockstep solve; ``stats`` and
    ``metrics`` describe the *shared* run (one Newton history, one grid),
    which all variants reference.
    """

    variants: list[TransientResult]
    stats: TransientStats
    times: np.ndarray
    step_sizes: np.ndarray
    options: SimOptions
    metrics: RunMetrics | None = None

    @property
    def sims(self) -> int:
        return len(self.variants)

    @property
    def final_time(self) -> float:
        return float(self.times[-1])

    def __getitem__(self, k: int) -> TransientResult:
        return self.variants[k]

    def __len__(self) -> int:
        return len(self.variants)


def _ensemble_initial_solution(
    ensemble: EnsembleCompilation,
    options: SimOptions,
    uic: bool,
    node_ics: dict[str, float] | None,
    stats: TransientStats,
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked ``(n, K)`` starting state from per-variant scalar solves.

    DC homotopy fallbacks mutate bank state (gshunt schedule, source
    scale), so each variant gets its own scalar
    :class:`~repro.mna.system.MnaSystem` over its own compiled circuit;
    the ensemble banks stay untouched. Books the phase's wall time and
    cost sums into *stats* exactly as the scalar engine does, and emits
    one ``dcop`` span per variant.
    """
    rec = resolve_recorder(options.instrument)
    started = time.perf_counter()
    xs: list[np.ndarray] = []
    qs: list[np.ndarray] = []
    for k, compiled in enumerate(ensemble.variants):
        system = MnaSystem(compiled)
        if not uic:
            var_started = time.perf_counter()
            op = solve_operating_point(system, options)
            stats.dc_work_units += op.work_units
            stats.newton_iterations += op.iterations
            stats.lu_factors += op.lu_factors
            stats.lu_refactors += op.lu_refactors
            stats.lu_solves += op.lu_solves
            stats.lu_reuse_hits += op.lu_reuse_hits
            if rec.enabled:
                dur = time.perf_counter() - var_started
                rec.emit_span(
                    DCOP,
                    ts=rec.clock() - dur,
                    dur=dur,
                    t_sim=0.0,
                    cost=op.work_units,
                    strategy=op.strategy,
                    iterations=op.iterations,
                    work_units=op.work_units,
                    variant=k,
                )
            xs.append(op.x)
            qs.append(op.q)
            continue
        x0 = np.zeros(system.n)
        for key, value in compiled.initial_conditions.items():
            kind, _, name = key.partition(":")
            if kind == "v":
                x0[compiled.node_voltage_index(name)] = value
            else:
                x0[compiled.branch_current_index(name)] = value
        for node, value in (node_ics or {}).items():
            x0[compiled.node_voltage_index(node)] = value
        out = system.make_buffers()
        system.eval(x0, 0.0, out)
        xs.append(x0)
        qs.append(system.charge(out))
    stats.dcop_seconds = time.perf_counter() - started
    return np.stack(xs, axis=1), np.stack(qs, axis=1)


def run_ensemble_transient(
    circuits: list[Circuit] | list[CompiledCircuit] | EnsembleCompilation,
    tstop: float,
    tstep: float | None = None,
    options: SimOptions | None = None,
    uic: bool = False,
    node_ics: dict[str, float] | None = None,
    instrument=None,
) -> EnsembleTransientResult:
    """Transient-simulate K same-topology variants in lockstep, 0 to *tstop*.

    Args:
        circuits: K circuit variants (raw or compiled) sharing one
            topology, or an already-built
            :class:`~repro.mna.ensemble.EnsembleCompilation`.
        tstep: suggested output/initial step, as in
            :func:`~repro.engine.transient.run_transient`.
        uic: skip the operating points and start from initial conditions.
        node_ics: extra initial node voltages for ``uic`` runs (applied to
            every variant).
        instrument: optional :class:`~repro.instrument.Recorder`.

    Raises:
        SimulationError: when the variants' topologies differ or a bank
            type does not support ensemble evaluation.
    """
    if isinstance(circuits, EnsembleCompilation):
        ensemble = circuits
    elif circuits and isinstance(circuits[0], Circuit):
        ensemble = compile_ensemble(list(circuits), options)
    else:
        ensemble = ensemble_from_compiled(list(circuits))
    options = options or ensemble.variants[0].options
    if instrument is not None:
        options = options.replace(instrument=instrument)
    rec = resolve_recorder(options.instrument)
    tracing = rec.enabled
    system = ensemble.system
    sims = system.sims
    stats = TransientStats()
    started = time.perf_counter()
    run_sid = rec.begin_span(RUN, kind="ensemble", sims=sims) if tracing else 0

    x0, q0 = _ensemble_initial_solution(ensemble, options, uic, node_ics, stats)
    history = TimepointHistory()
    history.append(Timepoint(0.0, x0, q0, np.zeros((system.n, sims))))

    compiled0 = ensemble.variants[0]
    h0 = options.first_step_fraction * (tstep if tstep else tstop / 50.0)
    controller = StepController(
        options, tstop, h0, compiled0.collect_breakpoints(tstop)
    )

    rec_times = [0.0]
    rec_x = [x0]
    step_sizes: list[float] = []
    buffers = system.make_buffers(fast_path=options.jacobian_reuse)
    solver = BlockSolver(sims, system.unknown_names)

    t = 0.0
    attempts = 0
    max_attempts = MAX_ATTEMPTS_FACTOR * max(int(tstop / h0), 1000)
    while t < tstop * (1.0 - END_SLACK):
        attempts += 1
        if attempts > max_attempts:
            raise TimestepError(
                f"attempt budget exhausted at t={t:.3e}s "
                f"({stats.accepted_points} accepted, {stats.rejected_points} rejected)"
            )
        h, hits_bp = controller.propose(t)
        step_sid = (
            rec.begin_span(TIMESTEP, t_sim=t + h, h=h, sims=sims) if tracing else 0
        )
        solution = solve_ensemble_timepoint(
            system, history, t + h, options, controller.force_be, buffers, solver
        )
        stats.work_units += solution.result.work_units
        stats.newton_iterations += solution.result.iterations
        stats.charge_lu(solution.result)
        if not solution.converged:
            stats.newton_failures += 1
            if tracing:
                rec.end_span(
                    step_sid,
                    outcome=OUTCOME_NEWTON_FAIL,
                    cost=solution.result.work_units,
                )
            controller.on_newton_failure(h)
            continue

        verdict, ratios = accept_ensemble_point(system, history, solution, options)
        if not verdict.accepted:
            stats.rejected_points += 1
            if tracing:
                rec.end_span(
                    step_sid,
                    outcome=OUTCOME_LTE_REJECT,
                    cost=solution.result.work_units,
                )
                rec.count("lte.rejects")
                rec.count("ensemble.lte.rejects")
                rec.event(
                    LTE_REJECT,
                    t_sim=solution.t,
                    h=h,
                    h_optimal=verdict.h_optimal,
                    worst_variant=int(ratios.argmax()) if ratios.size else -1,
                )
            controller.on_reject(h, verdict)
            continue

        history.append(solution.to_timepoint())
        controller.on_accept(h, verdict, hits_bp)
        if hits_bp:
            history.mark_era()
        t = solution.t
        stats.accepted_points += 1
        rec_times.append(t)
        rec_x.append(solution.result.x)
        step_sizes.append(h)
        if tracing:
            rec.end_span(
                step_sid, outcome=OUTCOME_ACCEPTED, cost=solution.result.work_units
            )
            rec.count("points.accepted")
            rec.count("ensemble.points.accepted")
            rec.observe("step.h_accepted", h)
            if ratios.size:
                rec.observe("ensemble.lte.worst_ratio", float(ratios.max()))
            rec.event(STEP_ACCEPT, t_sim=t, h=h)

    stats.tran_seconds = time.perf_counter() - started - stats.dcop_seconds
    if tracing:
        rec.end_span(
            run_sid, cost=stats.total_work, accepted=stats.accepted_points
        )
    metrics = RunMetrics.from_stats(
        stats, scheme="ensemble", threads=1, recorder=rec if tracing else None
    )

    times = np.array(rec_times)
    steps = np.array(step_sizes)
    block = np.stack(rec_x, axis=0)  # (points, n, K)
    variants = []
    for k in range(sims):
        data = {
            name: np.ascontiguousarray(block[:, i, k])
            for i, name in enumerate(system.unknown_names)
        }
        variants.append(
            TransientResult(
                waveforms=WaveformSet(times, data),
                stats=stats,
                times=times,
                step_sizes=steps,
                options=options,
                metrics=metrics,
            )
        )
    return EnsembleTransientResult(
        variants=variants,
        stats=stats,
        times=times,
        step_sizes=steps,
        options=options,
        metrics=metrics,
    )
