"""repro — WavePipe (DAC 2008) reproduction.

A SPICE-class transient circuit simulator with coarse-grained parallel
time-stepping: **waveform pipelining** (backward, forward and combined
schemes) per Dong, Li & Ye, "WavePipe: Parallel transient simulation of
analog and digital circuits on multi-core shared-memory machines",
DAC 2008.

Quickstart::

    from repro import Circuit, Pulse, simulate

    c = Circuit("rc")
    c.add_vsource("V1", "in", "0", Pulse(0, 1, delay=1e-9, rise=1e-12, width=1e-3))
    c.add_resistor("R1", "in", "out", "1k")
    c.add_capacitor("C1", "out", "0", "1n")

    seq = simulate(c, analysis="transient", tstop=10e-6)  # sequential baseline
    par = simulate(c, analysis="wavepipe", tstop=10e-6,
                   scheme="combined", threads=4)
    print(par.stats.self_speedup(), par.waveforms.voltage("out"))

The historical per-analysis entry points (``run_transient``,
``run_wavepipe``, ``dc_sweep``, ``ac_analysis``, ``sweep``) remain
importable but are deprecated shims over the same engines.
"""

from repro.analysis.ac import AcResult
from repro.analysis.dc import DcSweepResult
from repro.analysis.sweep import SweepResult
from repro.api import (
    ANALYSES,
    AnalysisRequest,
    AnalysisResult,
    EnsembleRequest,
    EnsembleResult,
    ac_analysis,
    dc_sweep,
    run_ensemble_request,
    run_request,
    run_transient,
    run_wavepipe,
    simulate,
    sweep,
)
from repro.engine.ensemble import EnsembleTransientResult, run_ensemble_transient
from repro.partition import (
    PartitionManifest,
    WtmResult,
    WtmStats,
    partition_circuit,
    run_wtm,
    wtm_vs_monolithic,
)
from repro.verify import (
    ChaosExecutor,
    EquivalenceReport,
    FuzzReport,
    GeneratedCircuit,
    run_verification,
    verify_circuit,
)
from repro.circuit.circuit import Circuit, Subcircuit
from repro.circuit.components import (
    Bjt,
    BjtModel,
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    DiodeModel,
    Inductor,
    Mosfet,
    MosfetModel,
    MutualInductance,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.sources import Dc, Exp, Pulse, Pwl, SampledWaveform, Sin
from repro.core.pipeline import PipelineResult, PipelineStats
from repro.core.wavepipe import SpeedupReport, compare_with_sequential
from repro.engine.transient import TransientResult, TransientStats
from repro.instrument import (
    NullRecorder,
    Recorder,
    RunMetrics,
    use_recorder,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.errors import (
    CircuitError,
    ConvergenceError,
    NetlistError,
    ReproError,
    SimulationError,
    SingularMatrixError,
    TimestepError,
    UnitError,
)
from repro.netlist.parser import Netlist, parse_file, parse_netlist
from repro.utils.options import SimOptions
from repro.utils.units import format_si, parse_value
from repro.waveform.export import read_csv, to_csv_text, write_csv
from repro.waveform.waveform import Deviation, Waveform, WaveformSet, compare

__version__ = "1.0.0"

__all__ = [
    "ANALYSES",
    "AcResult",
    "AnalysisRequest",
    "AnalysisResult",
    "ac_analysis",
    "Bjt",
    "BjtModel",
    "Capacitor",
    "Cccs",
    "Ccvs",
    "ChaosExecutor",
    "Circuit",
    "CircuitError",
    "compare",
    "compare_with_sequential",
    "ConvergenceError",
    "CurrentSource",
    "Dc",
    "dc_sweep",
    "DcSweepResult",
    "Deviation",
    "Diode",
    "DiodeModel",
    "EnsembleRequest",
    "EnsembleResult",
    "EnsembleTransientResult",
    "EquivalenceReport",
    "Exp",
    "format_si",
    "FuzzReport",
    "GeneratedCircuit",
    "Inductor",
    "Mosfet",
    "MosfetModel",
    "MutualInductance",
    "Netlist",
    "NetlistError",
    "NullRecorder",
    "parse_file",
    "parse_netlist",
    "parse_value",
    "PartitionManifest",
    "partition_circuit",
    "PipelineResult",
    "PipelineStats",
    "Pulse",
    "Pwl",
    "Recorder",
    "ReproError",
    "Resistor",
    "RunMetrics",
    "read_csv",
    "run_ensemble_request",
    "run_ensemble_transient",
    "run_request",
    "run_transient",
    "run_verification",
    "run_wavepipe",
    "run_wtm",
    "simulate",
    "SampledWaveform",
    "SimOptions",
    "SimulationError",
    "Sin",
    "SingularMatrixError",
    "SpeedupReport",
    "Subcircuit",
    "sweep",
    "SweepResult",
    "TimestepError",
    "TransientResult",
    "TransientStats",
    "to_csv_text",
    "UnitError",
    "use_recorder",
    "verify_circuit",
    "Vccs",
    "Vcvs",
    "VoltageSource",
    "Waveform",
    "WaveformSet",
    "write_chrome_trace",
    "write_csv",
    "write_jsonl",
    "write_trace",
    "WtmResult",
    "WtmStats",
    "wtm_vs_monolithic",
]
