"""Waveform containers and comparison metrics.

Transient engines emit a :class:`WaveformSet`: the accepted time axis plus
one trace per unknown. Because adaptive simulators put points wherever
their step control liked, comparing two runs (the paper's accuracy claim)
requires resampling onto a common grid — :func:`compare` interpolates both
sets linearly and reports max/RMS deviation per signal.

Also here: the scalar measurements examples and tests use (zero crossings,
period/frequency estimation, peak-to-peak, settling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


class Waveform:
    """One signal sampled on a strictly increasing time axis."""

    def __init__(self, times: np.ndarray, values: np.ndarray, name: str = ""):
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or times.shape != values.shape:
            raise SimulationError("waveform times/values must be matching 1-D arrays")
        if times.size >= 2 and np.any(np.diff(times) <= 0):
            raise SimulationError(f"waveform {name!r} time axis must strictly increase")
        self.times = times
        self.values = values
        self.name = name

    def __len__(self) -> int:
        return self.times.size

    def __repr__(self) -> str:
        span = f"[{self.times[0]:.3e}, {self.times[-1]:.3e}]s" if len(self) else "[]"
        return f"Waveform({self.name!r}, {len(self)} pts, {span})"

    def at(self, t) -> np.ndarray | float:
        """Linear interpolation at time(s) *t* (clamped at the ends)."""
        result = np.interp(t, self.times, self.values)
        return float(result) if np.isscalar(t) else result

    def resample(self, times: np.ndarray) -> "Waveform":
        return Waveform(np.asarray(times, dtype=float), self.at(times), self.name)

    def slice(self, t0: float, t1: float) -> "Waveform":
        """Portion with t0 <= t <= t1."""
        mask = (self.times >= t0) & (self.times <= t1)
        return Waveform(self.times[mask], self.values[mask], self.name)

    # -- measurements ---------------------------------------------------------

    def peak_to_peak(self) -> float:
        return float(self.values.max() - self.values.min())

    def crossings(self, level: float, direction: str = "both") -> np.ndarray:
        """Interpolated times where the signal crosses *level*.

        *direction* is "rise", "fall" or "both".
        """
        v = self.values - level
        sign_change = v[:-1] * v[1:] < 0
        idx = np.nonzero(sign_change)[0]
        if direction == "rise":
            idx = idx[v[idx] < 0]
        elif direction == "fall":
            idx = idx[v[idx] > 0]
        elif direction != "both":
            raise SimulationError(f"unknown crossing direction {direction!r}")
        t0, t1 = self.times[idx], self.times[idx + 1]
        v0, v1 = v[idx], v[idx + 1]
        return t0 - v0 * (t1 - t0) / (v1 - v0)

    def period(self, level: float | None = None) -> float | None:
        """Median spacing of rising crossings through *level* (default: mean).

        None when fewer than two rising crossings exist.
        """
        if level is None:
            level = float(self.values.mean())
        rises = self.crossings(level, "rise")
        if rises.size < 2:
            return None
        return float(np.median(np.diff(rises)))

    def frequency(self, level: float | None = None) -> float | None:
        p = self.period(level)
        return None if p is None or p <= 0 else 1.0 / p

    def final_value(self) -> float:
        if not len(self):
            raise SimulationError("empty waveform has no final value")
        return float(self.values[-1])


class WaveformSet:
    """All traces of one transient run, indexable by signal name."""

    def __init__(self, times: np.ndarray, data: dict[str, np.ndarray]):
        self.times = np.asarray(times, dtype=float)
        self._data = {k: np.asarray(v, dtype=float) for k, v in data.items()}
        for name, v in self._data.items():
            if v.shape != self.times.shape:
                raise SimulationError(f"trace {name!r} length mismatch with time axis")

    @property
    def names(self) -> list[str]:
        return list(self._data)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __getitem__(self, name: str) -> Waveform:
        if name not in self._data:
            available = ", ".join(sorted(self._data)[:8])
            raise SimulationError(
                f"no trace named {name!r}; available include: {available}"
            )
        return Waveform(self.times, self._data[name], name)

    def voltage(self, node: str) -> Waveform:
        return self[f"v({node})"]

    def current(self, component: str) -> Waveform:
        return self[f"i({component})"]

    def __len__(self) -> int:
        return self.times.size

    def __repr__(self) -> str:
        return f"WaveformSet({len(self._data)} traces, {len(self)} points)"


@dataclass(frozen=True)
class Deviation:
    """Accuracy comparison of one signal between two runs."""

    name: str
    max_abs: float
    rms: float
    reference_scale: float

    @property
    def max_relative(self) -> float:
        """Max deviation normalised by the reference signal's span."""
        if self.reference_scale <= 0:
            return 0.0 if self.max_abs == 0 else float("inf")
        return self.max_abs / self.reference_scale


def compare(
    reference: WaveformSet,
    candidate: WaveformSet,
    names: list[str] | None = None,
    grid_points: int = 2000,
) -> list[Deviation]:
    """Max/RMS deviation per signal on a common uniform grid.

    The grid spans the overlap of both runs; signals missing from either
    set are skipped. The reference scale is the reference signal's
    peak-to-peak span (so `max_relative` reads as "fraction of swing").
    """
    names = names if names is not None else [n for n in reference.names if n in candidate]
    t0 = max(reference.times[0], candidate.times[0])
    t1 = min(reference.times[-1], candidate.times[-1])
    if t1 <= t0:
        raise SimulationError("waveform sets do not overlap in time")
    grid = np.linspace(t0, t1, grid_points)
    out = []
    for name in names:
        if name not in candidate:
            continue
        ref = reference[name].at(grid)
        cand = candidate[name].at(grid)
        diff = np.abs(ref - cand)
        # Scale: signal swing, but never below its magnitude — a constant
        # 3 V rail has zero swing yet nanovolt noise on it is not "100%".
        scale = max(float(ref.max() - ref.min()), float(np.abs(ref).max()))
        out.append(
            Deviation(
                name=name,
                max_abs=float(diff.max()),
                rms=float(np.sqrt(np.mean(diff**2))),
                reference_scale=scale,
            )
        )
    return out


def worst_deviation(deviations: list[Deviation]) -> Deviation | None:
    """The deviation with the largest relative error, or None when empty."""
    if not deviations:
        return None
    return max(deviations, key=lambda d: d.max_relative)
