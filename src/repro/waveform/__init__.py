"""Waveform containers, measurements, comparison, CSV export."""
