"""Waveform CSV import/export.

A minimal, dependency-free interchange format so results can leave the
library (plotting, regression diffs, spreadsheet inspection): first column
is time, one column per trace, header row with trace names. Values are
written with ``repr``-level precision so a round trip is lossless.
"""

from __future__ import annotations

import csv
import io

import numpy as np

from repro.errors import SimulationError
from repro.waveform.waveform import WaveformSet


def write_csv(waveforms: WaveformSet, target, signals: list[str] | None = None) -> None:
    """Write *waveforms* as CSV to *target* (path or text file object).

    Args:
        signals: subset of trace names to export (default: all, sorted).
    """
    names = signals if signals is not None else sorted(waveforms.names)
    for name in names:
        if name not in waveforms:
            raise SimulationError(f"cannot export unknown trace {name!r}")
    columns = [waveforms[name].values for name in names]

    def write_to(handle) -> None:
        writer = csv.writer(handle)
        writer.writerow(["time"] + names)
        for k, t in enumerate(waveforms.times):
            writer.writerow([repr(float(t))] + [repr(float(c[k])) for c in columns])

    if hasattr(target, "write"):
        write_to(target)
    else:
        with open(target, "w", newline="", encoding="utf-8") as handle:
            write_to(handle)


def read_csv(source) -> WaveformSet:
    """Read a CSV written by :func:`write_csv` back into a WaveformSet."""

    def read_from(handle) -> WaveformSet:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SimulationError("waveform CSV is empty") from None
        if not header or header[0] != "time":
            raise SimulationError("waveform CSV must start with a 'time' column")
        names = header[1:]
        rows = [row for row in reader if row]
        if not rows:
            raise SimulationError("waveform CSV has no data rows")
        data = np.array([[float(cell) for cell in row] for row in rows])
        if data.shape[1] != len(names) + 1:
            raise SimulationError("waveform CSV row width does not match header")
        return WaveformSet(
            data[:, 0], {name: data[:, i + 1] for i, name in enumerate(names)}
        )

    if hasattr(source, "read"):
        return read_from(source)
    with open(source, "r", newline="", encoding="utf-8") as handle:
        return read_from(handle)


def to_csv_text(waveforms: WaveformSet, signals: list[str] | None = None) -> str:
    """CSV content as a string (convenience for tests and small exports)."""
    buffer = io.StringIO()
    write_csv(waveforms, buffer, signals)
    return buffer.getvalue()
