"""SPICE ``.measure``-style scalar measurements on waveforms.

The quantities a designer actually reads off a transient run: edge
timing, rise/fall times, propagation delay between two signals,
overshoot, settling time, duty cycle, and harmonic distortion. All
functions take :class:`~repro.waveform.waveform.Waveform` objects and
return floats (or None when the feature is absent, matching how
``.measure`` reports failed measurements).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.waveform.waveform import Waveform


def rise_time(
    waveform: Waveform,
    low: float | None = None,
    high: float | None = None,
    fractions: tuple[float, float] = (0.1, 0.9),
) -> float | None:
    """10%-90% (by default) rise time of the first rising edge.

    *low*/*high* default to the waveform's min/max; *fractions* are the
    measurement thresholds within that span.
    """
    if not len(waveform):
        return None
    low = float(waveform.values.min()) if low is None else low
    high = float(waveform.values.max()) if high is None else high
    span = high - low
    if span <= 0:
        return None
    t_lo = waveform.crossings(low + fractions[0] * span, "rise")
    t_hi = waveform.crossings(low + fractions[1] * span, "rise")
    if t_lo.size == 0 or t_hi.size == 0:
        return None
    t_start = t_lo[0]
    later = t_hi[t_hi > t_start]
    if later.size == 0:
        return None
    return float(later[0] - t_start)


def fall_time(
    waveform: Waveform,
    low: float | None = None,
    high: float | None = None,
    fractions: tuple[float, float] = (0.1, 0.9),
) -> float | None:
    """90%-10% fall time of the first falling edge."""
    if not len(waveform):
        return None
    low = float(waveform.values.min()) if low is None else low
    high = float(waveform.values.max()) if high is None else high
    span = high - low
    if span <= 0:
        return None
    t_hi = waveform.crossings(low + fractions[1] * span, "fall")
    t_lo = waveform.crossings(low + fractions[0] * span, "fall")
    if t_hi.size == 0 or t_lo.size == 0:
        return None
    t_start = t_hi[0]
    later = t_lo[t_lo > t_start]
    if later.size == 0:
        return None
    return float(later[0] - t_start)


def propagation_delay(
    trigger: Waveform,
    target: Waveform,
    trigger_level: float,
    target_level: float,
    trigger_edge: str = "rise",
    target_edge: str = "both",
    occurrence: int = 1,
) -> float | None:
    """Delay from the *occurrence*-th trigger edge to the next target edge."""
    if occurrence < 1:
        raise SimulationError("occurrence is 1-based")
    t_trig = trigger.crossings(trigger_level, trigger_edge)
    if t_trig.size < occurrence:
        return None
    t0 = t_trig[occurrence - 1]
    t_targ = target.crossings(target_level, target_edge)
    after = t_targ[t_targ > t0]
    if after.size == 0:
        return None
    return float(after[0] - t0)


def overshoot(waveform: Waveform, final: float | None = None) -> float:
    """Peak excursion beyond the final value, as a fraction of the swing.

    Returns 0.0 for monotone responses (and for empty waveforms, which
    have no excursion at all).
    """
    if not len(waveform):
        return 0.0
    final = waveform.final_value() if final is None else final
    initial = float(waveform.values[0])
    swing = final - initial
    if swing == 0:
        return 0.0
    if swing > 0:
        peak = float(waveform.values.max())
        return max(0.0, (peak - final) / swing)
    trough = float(waveform.values.min())
    return max(0.0, (final - trough) / -swing)


def settling_time(
    waveform: Waveform, tolerance: float = 0.02, final: float | None = None
) -> float | None:
    """First time after which the signal stays within ±tolerance of final.

    Tolerance is relative to the initial-to-final swing (2% default).
    """
    if not len(waveform):
        return None
    final = waveform.final_value() if final is None else final
    swing = abs(final - float(waveform.values[0]))
    if swing == 0:
        return float(waveform.times[0])
    band = tolerance * swing
    outside = np.abs(waveform.values - final) > band
    if not outside.any():
        return float(waveform.times[0])
    last_outside = np.nonzero(outside)[0][-1]
    if last_outside + 1 >= len(waveform):
        return None  # never settles inside the window
    return float(waveform.times[last_outside + 1])


def duty_cycle(waveform: Waveform, level: float | None = None) -> float | None:
    """Fraction of one period spent above *level* (default: midpoint)."""
    if not len(waveform):
        return None
    if level is None:
        level = float((waveform.values.max() + waveform.values.min()) / 2.0)
    rises = waveform.crossings(level, "rise")
    falls = waveform.crossings(level, "fall")
    if rises.size < 2 or falls.size < 1:
        return None
    t0, t1 = rises[0], rises[1]
    inside_falls = falls[(falls > t0) & (falls < t1)]
    if inside_falls.size == 0:
        return None
    return float((inside_falls[0] - t0) / (t1 - t0))


def tone_magnitude(waveform: Waveform, freq: float, samples: int = 4096) -> float:
    """Single-bin DFT magnitude at *freq* (uniform resample, mean removed).

    A waveform with fewer than two points carries no tone: returns 0.0.
    """
    if len(waveform) < 2:
        return 0.0
    grid = np.linspace(waveform.times[0], waveform.times[-1], samples)
    values = waveform.at(grid)
    values = values - values.mean()
    phase = np.exp(-2j * np.pi * freq * grid)
    return float(2.0 * abs(np.mean(values * phase)))


def thd(waveform: Waveform, fundamental: float, harmonics: int = 5) -> float | None:
    """Total harmonic distortion: sqrt(sum |H_k|^2) / |H_1| for k = 2..n.

    The waveform should span an integer number of fundamental periods for
    best accuracy; None when the fundamental is absent.
    """
    if harmonics < 2:
        raise SimulationError("thd needs at least 2 harmonics")
    h1 = tone_magnitude(waveform, fundamental)
    if h1 <= 0:
        return None
    power = sum(
        tone_magnitude(waveform, k * fundamental) ** 2
        for k in range(2, harmonics + 1)
    )
    return float(np.sqrt(power) / h1)
