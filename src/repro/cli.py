"""Command-line interface: ``python -m repro <deck.cir> [options]``.

Runs the analyses a SPICE deck requests (``.op``, ``.dc``, ``.tran``) and
prints results as tables; ``--wavepipe SCHEME`` switches the transient to
waveform pipelining and reports the virtual-clock speedup against the
sequential baseline; ``--ensemble K`` solves K parameter-jittered
variants in one lockstep run. ``--csv FILE`` exports transient
waveforms.

``python -m repro verify`` runs the differential-oracle fuzzing campaign
(:mod:`repro.verify`): random circuits through the full scheme x executor
x reuse lattice, with chaos-scheduled variants.

``python -m repro batch`` runs a batch campaign (:mod:`repro.jobs`):
Monte Carlo / corner / sweep job sets through the cache-aware scheduler,
checkpointed into a campaign store for resume. ``--heartbeat FILE`` /
``--progress`` stream live JSONL heartbeats and a TTY status line while
it runs; ``--serve-metrics PORT`` exposes a Prometheus ``/metrics``
endpoint.

``python -m repro perf`` maintains the committed bench baseline
(``benchmarks/BENCH_BASELINE.json``) and diffs fresh ``BENCH_METRICS``
dumps against it, exiting nonzero on regression.

Examples::

    python -m repro lowpass.cir
    python -m repro ring.cir --wavepipe combined --threads 4
    python -m repro grid.cir --csv out.csv --signals "v(out)" "i(V1)"
    python -m repro --experiment table_r2          # bench harness access
    python -m repro verify --trials 25 --seed 0    # equivalence fuzzing
    python -m repro batch --circuit rectifier --montecarlo 16 --seed 7 \\
        --store out/rect-mc --backend process --workers 4 \\
        --heartbeat beats.jsonl --progress
    python -m repro batch --circuit rectifier --montecarlo 16 --ensemble 16
    python -m repro lowpass.cir --ensemble 8 --jitter 0.02 --seed 5
    python -m repro perf diff --baseline benchmarks/BENCH_BASELINE.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import simulate
from repro.bench.tables import render_table
from repro.core.wavepipe import compare_with_sequential
from repro.errors import ReproError
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem
from repro.netlist.parser import DcCommand, OpCommand, TranCommand, parse_file
from repro.solver.dcop import solve_operating_point
from repro.utils.units import format_si, parse_value


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Live-telemetry flags shared by the deck runner and ``batch``."""
    parser.add_argument(
        "--heartbeat", metavar="FILE",
        help="write one JSONL heartbeat record per interval while running",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=5.0, metavar="SECONDS",
        help="wall-clock seconds between heartbeats (default 5)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="live status line on stderr (jobs done/failed/cached, pts/s, ETA)",
    )
    parser.add_argument(
        "--serve-metrics", type=int, metavar="PORT",
        help="serve Prometheus text exposition on http://127.0.0.1:PORT/metrics "
        "for the duration of the run (0 = ephemeral port)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WavePipe-reproduction circuit simulator",
        epilog="Analyses come from the deck's .op/.dc/.tran cards.",
    )
    parser.add_argument("deck", nargs="?", help="SPICE netlist file")
    parser.add_argument(
        "--wavepipe",
        choices=["backward", "forward", "combined"],
        help="run the transient with this waveform-pipelining scheme",
    )
    parser.add_argument(
        "--threads", type=int, default=2, help="thread count for --wavepipe"
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "thread"],
        default="serial",
        help="pipeline runtime (serial = deterministic reference)",
    )
    parser.add_argument(
        "--partitions", type=int, metavar="N",
        help="run the transient with the waveform transmission method, "
        "cutting the circuit into N weakly-coupled partitions "
        "(--wavepipe then pipelines each partition solve)",
    )
    parser.add_argument(
        "--wtm-mode",
        choices=["jacobi", "seidel"],
        default="seidel",
        help="WTM outer iteration: jacobi (concurrent) or seidel "
        "(in-sweep updates, fewer iterations)",
    )
    parser.add_argument(
        "--windows", type=int, default=1, metavar="W",
        help="split the WTM run into W time windows iterated in sequence",
    )
    parser.add_argument(
        "--ensemble", type=int, metavar="K",
        help="run the transient as a K-variant parameter-jittered ensemble "
        "(one lockstep solve; see --jitter/--seed)",
    )
    parser.add_argument(
        "--jitter", type=float, default=0.05, metavar="SIGMA",
        help="lognormal sigma for --ensemble parameter jitter (default 0.05)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for --ensemble jitter draws"
    )
    parser.add_argument("--csv", help="export transient waveforms to this CSV file")
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a transient trace (.json = Chrome trace_event for "
        "Perfetto/chrome://tracing, .jsonl = line-delimited records)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the end-of-run metrics summary for transient analyses",
    )
    _add_telemetry_arguments(parser)
    parser.add_argument(
        "--signals", nargs="*", help="trace names for printing/CSV (default: node voltages)"
    )
    parser.add_argument(
        "--samples", type=int, default=20, help="printed sample rows for waveforms"
    )
    parser.add_argument(
        "--experiment",
        help="run a registered evaluation experiment (e.g. table_r2, fig_r1) instead of a deck",
    )
    return parser


def build_verify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="Differential-oracle fuzzing: prove scheme x executor x "
        "reuse equivalence on randomly generated circuits",
    )
    parser.add_argument(
        "--trials", type=int, default=10, help="number of random circuits (default 10)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0); same seed "
        "reproduces the identical report byte-for-byte"
    )
    parser.add_argument(
        "--threads", type=int, default=3, help="threads for pipelined configs"
    )
    parser.add_argument(
        "--tol", type=float, default=None,
        help="pass/fail bound on worst relative deviation (default: LTE rung, 2e-2)",
    )
    parser.add_argument(
        "--families", nargs="*", default=None,
        help="restrict generation to these circuit families",
    )
    parser.add_argument(
        "--no-chaos", action="store_true",
        help="skip the chaos-scheduled configurations",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the full FuzzReport as JSON"
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the verify.* / chaos.* counter snapshot",
    )
    parser.add_argument(
        "--list-families", action="store_true",
        help="list the generator families and exit",
    )
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Batch simulation campaigns: Monte Carlo, PVT corners "
        "and parameter sweeps through the cache-aware job scheduler",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--circuit", help="registry benchmark name")
    source.add_argument("--deck", help="SPICE netlist file")
    source.add_argument(
        "--verify-seed", type=int, metavar="SEED",
        help="draw the circuit from the verify generators with this seed",
    )
    parser.add_argument(
        "--families", nargs="*", default=None,
        help="family restriction for --verify-seed draws",
    )
    generator = parser.add_mutually_exclusive_group()
    generator.add_argument(
        "--montecarlo", type=int, metavar="N",
        help="N Monte Carlo variants with seeded parameter jitter",
    )
    generator.add_argument(
        "--corners", nargs="*", metavar="NAME",
        help="PVT corner set (no names = all stock corners)",
    )
    generator.add_argument(
        "--sweep", nargs="+", metavar=("COMP", "VALUE"),
        help="sweep component COMP over the listed values (SI suffixes ok)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="Monte Carlo seed (default 0)"
    )
    parser.add_argument(
        "--jitter", type=float, default=0.05,
        help="Monte Carlo lognormal sigma (default 0.05 ~ 5%%)",
    )
    parser.add_argument(
        "--analysis", choices=["transient", "wavepipe"], default="transient"
    )
    parser.add_argument("--scheme", choices=["backward", "forward", "combined"])
    parser.add_argument(
        "--threads", type=int, default=1, help="threads per job (wavepipe)"
    )
    parser.add_argument("--tstop", type=parse_value, help="transient stop time")
    parser.add_argument("--tstep", type=parse_value, help="suggested first step")
    parser.add_argument(
        "--store", metavar="DIR",
        help="campaign store directory (manifest + result cache); enables "
        "cache hits and checkpoint/resume",
    )
    parser.add_argument(
        "--backend", choices=["serial", "process", "ensemble"], default="serial"
    )
    parser.add_argument(
        "--ensemble", type=int, metavar="K",
        help="batch same-topology jobs into lockstep ensemble solves, at "
        "most K variants per solve (implies --backend ensemble)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="process-pool size (default 2)"
    )
    parser.add_argument(
        "--timeout", type=float, help="per-job wall-clock limit in seconds"
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for failed/timed-out/crashed jobs (default 1)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.0,
        help="base retry delay in seconds (doubles per round)",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the campaign report as JSON"
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the campaign metrics rollup and jobs.* counters",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a campaign trace (.jsonl = line-delimited records "
        "with the summary footer `repro explain` consumes, .json = "
        "Chrome trace_event)",
    )
    _add_telemetry_arguments(parser)
    parser.add_argument(
        "--list-circuits", action="store_true",
        help="list the registry benchmark names and exit",
    )
    return parser


def build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="Diagnose a traced run: critical-path lane, rejection "
        "cause taxonomy, speculation economics and the solver-phase cost "
        "split — from a JSONL trace written with --trace run.jsonl",
    )
    parser.add_argument(
        "trace", help="JSONL trace file (written by `--trace run.jsonl`)"
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="write the deterministic JSON report ('-' prints it instead "
        "of the text rendering)",
    )
    parser.add_argument(
        "--html", metavar="FILE",
        help="write a self-contained HTML timeline + diagnosis page",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the trace is healthy: spans present and "
        "well-formed, a nonempty critical path, every rejection classified",
    )
    return parser


def _run_explain(argv: list[str]) -> int:
    from repro.diagnose import explain_trace, render_html, render_text
    from repro.instrument.exporters import read_jsonl

    args = build_explain_parser().parse_args(argv)
    try:
        events, summary = read_jsonl(args.trace)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(
            f"error: {args.trace} is not a JSONL trace ({exc}); "
            "`repro explain` reads the .jsonl format, not Chrome traces",
            file=sys.stderr,
        )
        return 2
    report = explain_trace(events, summary, source=args.trace)

    if args.json == "-":
        print(report.to_json(), end="")
    else:
        print(render_text(report), end="")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
            print(f"* json report written to {args.json}")
    if args.html:
        page = render_html(events, report, title=f"repro explain: {args.trace}")
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(page)
        if args.json != "-":
            print(f"* html timeline written to {args.html}")

    if args.check:
        failures = []
        if report.spans.get("count", 0) == 0:
            failures.append("no spans in the trace")
        if report.spans.get("malformed", 0):
            failures.append(f"{report.spans['malformed']} malformed span(s)")
        cp = report.critical_path
        populated = cp.get("lanes") or cp.get("slowest_jobs")
        if not populated or cp.get("critical_lane") is None and not cp.get(
            "critical_job"
        ):
            failures.append("empty critical path")
        if report.rejections.get("classified_fraction", 1.0) < 1.0:
            failures.append("unclassified rejections")
        if failures:
            for failure in failures:
                print(f"check failed: {failure}", file=sys.stderr)
            return 1
    return 0


def build_perf_parser() -> argparse.ArgumentParser:
    from repro.instrument.perf import DEFAULT_BASELINE, DEFAULT_TOLERANCE

    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Perf trending over the bench harness's BENCH_METRICS "
        "dumps: build a committed baseline, diff fresh runs against it",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    baseline = sub.add_parser(
        "baseline", help="canonicalize BENCH_METRICS_*.json into a baseline file"
    )
    baseline.add_argument(
        "--metrics-dir", default="benchmarks", metavar="DIR",
        help="directory holding BENCH_METRICS_*.json (default: benchmarks)",
    )
    baseline.add_argument(
        "--out", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline file to write (default: {DEFAULT_BASELINE})",
    )
    diff = sub.add_parser(
        "diff", help="compare fresh metrics dumps against a baseline; "
        "exit 1 on regression"
    )
    diff.add_argument(
        "--metrics-dir", default="benchmarks", metavar="DIR",
        help="directory holding the fresh BENCH_METRICS_*.json",
    )
    diff.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline to compare against (default: {DEFAULT_BASELINE})",
    )
    diff.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"relative tolerance before a movement counts "
        f"(default {DEFAULT_TOLERANCE})",
    )
    diff.add_argument(
        "--metric-tolerance", action="append", default=[], metavar="NAME=TOL",
        help="per-metric tolerance override (flattened key like "
        "counters.newton.iterations, or bare channel name); repeatable",
    )
    diff.add_argument(
        "--json", metavar="FILE", help="write the machine-readable diff report"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["verify"]:
        return _run_verify(argv[1:])
    if argv[:1] == ["batch"]:
        return _run_batch(argv[1:])
    if argv[:1] == ["perf"]:
        return _run_perf(argv[1:])
    if argv[:1] == ["explain"]:
        return _run_explain(argv[1:])
    if argv[:1] == ["serve"]:
        return _run_serve(argv[1:])
    if argv[:1] == ["node"]:
        return _run_node(argv[1:])
    if argv[:1] == ["submit"]:
        return _run_submit(argv[1:])
    if argv[:1] == ["trace"]:
        return _run_trace(argv[1:])
    if argv[:1] == ["loadgen"]:
        return _run_loadgen(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        if args.experiment:
            return _run_experiment(args.experiment)
        if not args.deck:
            build_parser().print_usage()
            print("error: provide a deck file or --experiment", file=sys.stderr)
            return 2
        return _run_deck(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_verify(argv: list[str]) -> int:
    from repro.instrument import Recorder
    from repro.verify import DEFAULT_TOLERANCE, FAMILIES, run_verification

    args = build_verify_parser().parse_args(argv)
    if args.list_families:
        for name in sorted(FAMILIES):
            print(name)
        return 0
    recorder = Recorder(capture_events=False) if args.metrics else None
    try:
        report = run_verification(
            trials=args.trials,
            seed=args.seed,
            threads=args.threads,
            tolerance=DEFAULT_TOLERANCE if args.tol is None else args.tol,
            chaos=not args.no_chaos,
            families=args.families,
            instrument=recorder,
            on_report=lambda trial: print(trial.summary(), flush=True),
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: unknown family {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"* report written to {args.json}")
    if recorder is not None:
        for name in sorted(recorder.counters):
            print(f"  {name} = {recorder.counters[name]:g}")
    return 0 if report.passed else 1


def _run_perf(argv: list[str]) -> int:
    import json as json_module

    from repro.instrument.perf import (
        build_baseline,
        diff_against_baseline,
        load_baseline,
        write_baseline,
    )

    args = build_perf_parser().parse_args(argv)
    if args.command == "baseline":
        baseline = build_baseline(args.metrics_dir)
        if not baseline["experiments"]:
            print(
                f"error: no BENCH_METRICS_*.json found in {args.metrics_dir}",
                file=sys.stderr,
            )
            return 2
        path = write_baseline(baseline, args.out)
        print(
            f"* baseline over {len(baseline['experiments'])} experiment(s) "
            f"written to {path}"
        )
        return 0

    overrides: dict[str, float] = {}
    for item in args.metric_tolerance:
        name, sep, value = item.partition("=")
        if not sep or not name:
            print(
                f"error: --metric-tolerance expects NAME=TOL, got {item!r}",
                file=sys.stderr,
            )
            return 2
        try:
            overrides[name] = float(value)
        except ValueError:
            print(
                f"error: --metric-tolerance {name}: {value!r} is not a number",
                file=sys.stderr,
            )
            return 2
    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(
            f"error: baseline {args.baseline} not found "
            "(build one with `repro perf baseline`)",
            file=sys.stderr,
        )
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_against_baseline(
        baseline,
        args.metrics_dir,
        tolerance=args.tolerance,
        metric_tolerances=overrides,
    )
    print(diff.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(diff.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"* diff report written to {args.json}")
    if not diff.compared:
        # A diff that compared nothing is a misconfiguration, not a pass.
        print(
            f"error: no experiment in {args.metrics_dir} matches the baseline",
            file=sys.stderr,
        )
        return 2
    return 0 if diff.passed else 1


def _run_batch(argv: list[str]) -> int:
    import contextlib
    import json as json_module

    from repro.instrument import Heartbeat, MetricsServer, Recorder
    from repro.jobs import (
        CircuitRef,
        JobSpec,
        monte_carlo,
        param_sweep,
        pvt_corners,
        run_campaign,
        single,
    )

    args = build_batch_parser().parse_args(argv)
    if args.list_circuits:
        from repro.circuits.registry import benchmark_names

        for name in benchmark_names():
            print(name)
        return 0

    try:
        if args.circuit:
            ref = CircuitRef(kind="registry", name=args.circuit)
        elif args.deck:
            with open(args.deck, encoding="utf-8") as handle:
                ref = CircuitRef(kind="netlist", netlist=handle.read())
        elif args.verify_seed is not None:
            ref = CircuitRef(
                kind="verify", seed=args.verify_seed, families=args.families
            )
        else:
            build_batch_parser().print_usage()
            print(
                "error: provide --circuit, --deck or --verify-seed",
                file=sys.stderr,
            )
            return 2

        base = JobSpec(
            circuit=ref,
            analysis=args.analysis,
            tstop=args.tstop,
            tstep=args.tstep,
            scheme=args.scheme,
            threads=args.threads,
        )
        if args.montecarlo is not None:
            campaign = monte_carlo(
                base, n=args.montecarlo, seed=args.seed, jitter=args.jitter
            )
        elif args.corners is not None:
            campaign = pvt_corners(base, corners=args.corners or None)
        elif args.sweep is not None:
            if len(args.sweep) < 2:
                print(
                    "error: --sweep needs a component name and at least one value",
                    file=sys.stderr,
                )
                return 2
            campaign = param_sweep(
                base, args.sweep[0], [parse_value(v) for v in args.sweep[1:]]
            )
        else:
            campaign = single(base)

        backend = args.backend
        if args.ensemble is not None:
            if args.ensemble < 1:
                print("error: --ensemble needs K >= 1", file=sys.stderr)
                return 2
            from repro.jobs.ensemble import EnsembleBackend

            backend = EnsembleBackend(max_group=args.ensemble)

        telemetry_wanted = (
            args.metrics
            or args.heartbeat
            or args.progress
            or args.serve_metrics is not None
            or args.trace
        )
        recorder = (
            Recorder(capture_events=bool(args.trace)) if telemetry_wanted else None
        )
        heartbeat = None
        if args.heartbeat or args.progress:
            heartbeat = Heartbeat(
                recorder,
                interval=args.heartbeat_interval,
                jsonl=args.heartbeat,
                stream=sys.stderr if args.progress else None,
            )
        with contextlib.ExitStack() as scopes:
            if args.serve_metrics is not None:
                server = scopes.enter_context(
                    MetricsServer(recorder, port=args.serve_metrics)
                )
                print(f"* /metrics on http://127.0.0.1:{server.port}/metrics")
            report = run_campaign(
                campaign,
                store=args.store,
                backend=backend,
                workers=args.workers,
                timeout=args.timeout,
                retries=args.retries,
                backoff=args.backoff,
                instrument=recorder,
                heartbeat=heartbeat,
                on_outcome=lambda outcome: print(
                    f"  [{outcome.status:>7}] {outcome.spec.label}"
                    + (f" ({outcome.error})" if outcome.error else ""),
                    flush=True,
                ),
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(report.summary())
    if args.trace and recorder is not None:
        from repro.instrument import write_trace

        fmt = write_trace(recorder, args.trace)
        print(f"* {fmt} trace written to {args.trace}")
    if args.heartbeat:
        print(f"* heartbeats written to {args.heartbeat}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"* report written to {args.json}")
    if args.metrics:
        print(report.metrics.summary())
        for name in sorted(report.metrics.counters):
            if name.startswith("jobs."):
                print(f"  {name} = {report.metrics.counters[name]:g}")
    return 0 if report.passed else 1


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the simulation service: an HTTP/JSON front end over "
        "a persistent multi-tenant job queue, optionally with in-process "
        "farm-node workers",
    )
    parser.add_argument(
        "--root", required=True, metavar="DIR",
        help="queue directory shared with the farm nodes",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = ephemeral; the actual port is printed "
        "and reported by /healthz)",
    )
    parser.add_argument(
        "--quota", type=int, default=None, metavar="N",
        help="per-tenant active-job cap; submits beyond it get 429s",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="claim attempts before a job is marked failed (default 3)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="in-process farm-node threads (default 0 = accept-only; run "
        "`repro node` processes against the same --root instead)",
    )
    parser.add_argument(
        "--backend", choices=["serial", "process", "ensemble"],
        default="serial", help="backend of the in-process nodes",
    )
    parser.add_argument(
        "--node-workers", type=int, default=1,
        help="process-pool size per in-process node",
    )
    parser.add_argument(
        "--batch", type=int, default=1,
        help="jobs claimed per node transaction (raise for ensemble batching)",
    )
    parser.add_argument(
        "--lease", type=float, default=30.0,
        help="lease seconds per claim (default 30)",
    )
    parser.add_argument(
        "--request-log", metavar="FILE", default=None,
        help="append one structured JSON line per HTTP request (route, "
        "tenant, status, duration_ms, trace_id)",
    )
    return parser


def _run_serve(argv: list[str]) -> int:
    import signal as signal_module
    import threading

    from repro.instrument import Recorder
    from repro.service.server import ServiceServer

    args = build_serve_parser().parse_args(argv)
    stop = threading.Event()
    for signum in (signal_module.SIGTERM, signal_module.SIGINT):
        signal_module.signal(signum, lambda *_: stop.set())
    try:
        server = ServiceServer(
            args.root,
            recorder=Recorder(capture_events=False),
            host=args.host,
            port=args.port,
            quota=args.quota,
            max_attempts=args.max_attempts,
            workers=args.workers,
            backend=args.backend,
            node_workers=args.node_workers,
            batch=args.batch,
            lease_seconds=args.lease,
            request_log=args.request_log,
        ).start()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"* service on {server.url} (queue {args.root})", flush=True)
    try:
        stop.wait()
    finally:
        server.stop()
    return 0


def build_node_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro node",
        description="Run one farm node: claim jobs from a queue directory by "
        "content hash under a lease, execute them, publish to the shared "
        "result cache",
    )
    parser.add_argument("--root", required=True, metavar="DIR")
    parser.add_argument("--id", dest="node_id", help="node identity in leases")
    parser.add_argument(
        "--backend", choices=["serial", "process", "ensemble"], default="serial"
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--batch", type=int, default=1, help="jobs claimed per transaction"
    )
    parser.add_argument(
        "--ensemble", type=int, metavar="K",
        help="lockstep-batch same-topology jobs, at most K per solve "
        "(implies --backend ensemble; pair with --batch >= K)",
    )
    parser.add_argument("--lease", type=float, default=30.0)
    parser.add_argument("--poll", type=float, default=0.05)
    parser.add_argument(
        "--timeout", type=float, help="per-job wall-clock limit in seconds"
    )
    parser.add_argument(
        "--drain", action="store_true",
        help="exit once the queue has no active (pending or leased) work",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the node's service.node.* / jobs.* counters on exit",
    )
    return parser


def _run_node(argv: list[str]) -> int:
    from repro.instrument import Recorder
    from repro.service.node import run_node

    args = build_node_parser().parse_args(argv)
    backend = args.backend
    if args.ensemble is not None:
        if args.ensemble < 1:
            print("error: --ensemble needs K >= 1", file=sys.stderr)
            return 2
        from repro.jobs.ensemble import EnsembleBackend

        backend = EnsembleBackend(max_group=args.ensemble)
    # Always instrument the node: with a live recorder the scheduler asks
    # workers for telemetry snapshots, which is what puts engine spans
    # into the per-job trace records (--metrics only controls printing).
    recorder = Recorder(capture_events=False)
    try:
        total = run_node(
            args.root,
            node_id=args.node_id,
            backend=backend,
            workers=args.workers,
            batch=args.batch,
            lease_seconds=args.lease,
            poll_interval=args.poll,
            timeout=args.timeout,
            drain=args.drain,
            instrument=recorder,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"* node settled after claiming {total} job(s)")
    if args.metrics:
        for name in sorted(recorder.counters):
            if name.startswith(("service.", "jobs.")):
                print(f"  {name} = {recorder.counters[name]:g}")
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Fetch a campaign's stitched cross-node trace from a "
        "running `repro serve` instance (GET /trace/<campaign>) as a "
        "repro-trace-v1 JSONL dump that `repro explain` consumes",
    )
    parser.add_argument("--url", required=True, help="service base URL")
    parser.add_argument("cid", help="campaign id (from the submit receipt)")
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the JSONL dump here (default: print to stdout)",
    )
    return parser


def _run_trace(argv: list[str]) -> int:
    from repro.service.client import ServiceClient, ServiceError

    args = build_trace_parser().parse_args(argv)
    client = ServiceClient(args.url)
    try:
        body = client.trace(args.cid)
    except ServiceError as exc:
        if exc.status == 404:
            print(f"error: unknown campaign {args.cid!r}", file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(body)
        lines = body.count("\n")
        print(f"* trace written to {args.out} ({lines} record(s))")
    else:
        print(body, end="")
    return 0


def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a job or a generated campaign to a running "
        "`repro serve` instance over HTTP",
    )
    parser.add_argument("--url", required=True, help="service base URL")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--circuit", help="registry benchmark name")
    source.add_argument("--deck", help="SPICE netlist file")
    source.add_argument(
        "--verify-seed", type=int, metavar="SEED",
        help="draw the circuit from the verify generators with this seed",
    )
    parser.add_argument(
        "--families", nargs="*", default=None,
        help="family restriction for --verify-seed draws",
    )
    generator = parser.add_mutually_exclusive_group()
    generator.add_argument("--montecarlo", type=int, metavar="N")
    generator.add_argument("--corners", nargs="*", metavar="NAME")
    generator.add_argument("--sweep", nargs="+", metavar=("COMP", "VALUE"))
    generator.add_argument(
        "--ensemble", type=int, metavar="N",
        help="N Monte Carlo variants flagged for lockstep ensemble batching",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jitter", type=float, default=0.05)
    parser.add_argument(
        "--analysis", choices=["transient", "wavepipe"], default="transient"
    )
    parser.add_argument("--scheme", choices=["backward", "forward", "combined"])
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--tstop", type=parse_value)
    parser.add_argument("--tstep", type=parse_value)
    parser.add_argument("--tenant", default=None)
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument(
        "--wait", action="store_true",
        help="poll until the job/campaign settles; exit 1 on failures",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="(campaigns) print the chunked heartbeat stream while waiting",
    )
    parser.add_argument("--json", metavar="FILE", help="write the receipt JSON")
    return parser


def _run_submit(argv: list[str]) -> int:
    import json as json_module

    from repro.jobs import CircuitRef, JobSpec
    from repro.service.client import Backpressure, ServiceClient, ServiceError

    args = build_submit_parser().parse_args(argv)
    try:
        if args.circuit:
            ref = CircuitRef(kind="registry", name=args.circuit)
        elif args.deck:
            with open(args.deck, encoding="utf-8") as handle:
                ref = CircuitRef(kind="netlist", netlist=handle.read())
        elif args.verify_seed is not None:
            ref = CircuitRef(
                kind="verify", seed=args.verify_seed, families=args.families
            )
        else:
            build_submit_parser().print_usage()
            print(
                "error: provide --circuit, --deck or --verify-seed",
                file=sys.stderr,
            )
            return 2
        base = JobSpec(
            circuit=ref,
            analysis=args.analysis,
            tstop=args.tstop,
            tstep=args.tstep,
            scheme=args.scheme,
            threads=args.threads,
        )
    except (ReproError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    generator = None
    if args.montecarlo is not None:
        generator = {
            "kind": "monte_carlo", "n": args.montecarlo,
            "seed": args.seed, "jitter": args.jitter,
        }
    elif args.ensemble is not None:
        generator = {
            "kind": "ensemble", "n": args.ensemble,
            "seed": args.seed, "jitter": args.jitter,
        }
    elif args.corners is not None:
        generator = {"kind": "pvt_corners", "corners": args.corners or None}
    elif args.sweep is not None:
        if len(args.sweep) < 2:
            print(
                "error: --sweep needs a component name and at least one value",
                file=sys.stderr,
            )
            return 2
        generator = {
            "kind": "param_sweep", "component": args.sweep[0],
            "values": [parse_value(v) for v in args.sweep[1:]],
        }

    client = ServiceClient(args.url, tenant=args.tenant)
    try:
        if generator is None:
            receipt = client.submit_job(base, priority=args.priority)
            print(
                f"* job {receipt['id'][:16]} {receipt['status']}"
                + (" (deduped)" if receipt["deduped"] else "")
            )
        else:
            receipt = client.submit_campaign(
                base, generator, priority=args.priority
            )
            print(
                f"* campaign {receipt['id']}: {len(receipt['jobs'])} job(s), "
                f"{receipt['submitted']} new, {receipt['deduped']} deduped"
            )
            if receipt.get("trace_id"):
                print(f"* trace id {receipt['trace_id']}")
    except Backpressure as exc:
        print(
            f"error: backpressure (429): {exc} "
            f"[queue depth {exc.queue_depth}, tenant depth {exc.tenant_depth}, "
            f"retry after {exc.retry_after:g}s]",
            file=sys.stderr,
        )
        return 3
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(receipt, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not (args.wait or args.stream):
        return 0

    try:
        if generator is None:
            status = client.wait_job(receipt["id"])
            print(f"* job settled: {status['status']}")
            return 0 if status["status"] == "done" else 1
        if args.stream:
            for record in client.stream(receipt["id"]):
                jobs = record["jobs"]
                print(
                    f"  [stream {record['elapsed']:6.1f}s] "
                    f"{jobs['done']:g}/{jobs['total']} done, "
                    f"{jobs['failed']:g} failed",
                    flush=True,
                )
            rollup = client.campaign(receipt["id"])
        else:
            rollup = client.wait_campaign(receipt["id"])
        print(f"* campaign settled: {rollup['counts']}")
        return 0 if rollup["counts"].get("done", 0) == rollup["jobs"] else 1
    except (ServiceError, ConnectionError, OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def build_loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Drive a deterministic mixed request stream (unique / "
        "duplicate submissions, status polls, campaigns) against a running "
        "service",
    )
    parser.add_argument("--url", required=True, help="service base URL")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--circuit", default="rcladder20")
    parser.add_argument(
        "--tenants", nargs="*", default=["acme", "bulk", "free"],
        help="tenant rotation for submissions",
    )
    parser.add_argument(
        "--unique", type=int, default=8,
        help="distinct-spec pool size submissions draw from",
    )
    parser.add_argument("--jitter", type=float, default=0.02)
    parser.add_argument("--campaign-every", type=int, default=25)
    parser.add_argument("--campaign-jobs", type=int, default=4)
    parser.add_argument("--tstop", type=parse_value)
    parser.add_argument("--no-wait", action="store_true")
    parser.add_argument("--wait-timeout", type=float, default=300.0)
    parser.add_argument("--no-fetch", action="store_true")
    parser.add_argument("--think", type=float, default=0.0)
    parser.add_argument("--json", metavar="FILE", help="write the LoadReport")
    parser.add_argument(
        "--assert-backpressure", action="store_true",
        help="exit 1 unless at least one 429 was observed",
    )
    parser.add_argument(
        "--assert-drained", action="store_true",
        help="exit 1 unless the queue drained within --wait-timeout",
    )
    return parser


def _run_loadgen(argv: list[str]) -> int:
    import json as json_module

    from repro.service.loadgen import run_load

    args = build_loadgen_parser().parse_args(argv)
    try:
        report = run_load(
            args.url,
            requests=args.requests,
            seed=args.seed,
            circuit=args.circuit,
            tenants=tuple(args.tenants),
            unique=args.unique,
            jitter=args.jitter,
            campaign_every=args.campaign_every,
            campaign_jobs=args.campaign_jobs,
            tstop=args.tstop,
            wait=not args.no_wait,
            wait_timeout=args.wait_timeout,
            fetch_results=not args.no_fetch,
            think=args.think,
        )
    except (ReproError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"* report written to {args.json}")
    if args.assert_backpressure and report.rejected == 0:
        print("error: expected at least one 429, saw none", file=sys.stderr)
        return 1
    if args.assert_drained and not report.drained:
        print("error: queue failed to drain in time", file=sys.stderr)
        return 1
    return 0


def _run_experiment(exp_id: str) -> int:
    from repro.bench.experiments import run_experiment

    try:
        result = run_experiment(exp_id)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.text)
    return 0


def _run_deck(args) -> int:
    netlist = parse_file(args.deck)
    print(f"* {netlist.title}")
    compiled = compile_circuit(netlist.circuit, netlist.options)
    print(
        f"* {compiled.n} unknowns ({compiled.n_nodes} nodes, "
        f"{compiled.n_branches} branch currents)"
    )

    analyses = netlist.analyses or [OpCommand()]
    for command in analyses:
        if isinstance(command, OpCommand):
            _print_op(compiled, netlist)
        elif isinstance(command, DcCommand):
            _print_dc(compiled, command, args)
        elif isinstance(command, TranCommand):
            _print_tran(compiled, netlist, command, args)
    return 0


def _print_op(compiled, netlist) -> None:
    system = MnaSystem(compiled)
    op = solve_operating_point(system, netlist.options)
    rows = [
        [name, format_si(value, "V" if name.startswith("v") else "A")]
        for name, value in zip(compiled.unknown_names, op.x)
    ]
    print(render_table(["unknown", "value"], rows, title="Operating point"))
    print(f"* strategy: {op.strategy}, {op.iterations} Newton iterations")


def _print_dc(compiled, command: DcCommand, args) -> None:
    count = int(round((command.stop - command.start) / command.step)) + 1
    values = np.linspace(command.start, command.stop, max(count, 2))
    result = simulate(compiled, analysis="dc", source=command.source, values=values)
    signals = args.signals or [n for n in result.curves.names if n.startswith("v")][:4]
    step = max(1, len(values) // args.samples)
    rows = [
        [format_si(v, "")] + [result.curves[s].values[k] for s in signals]
        for k, v in enumerate(values)
        if k % step == 0
    ]
    print(
        render_table(
            [command.source] + signals, rows, title=f"DC sweep of {command.source}"
        )
    )


def _print_tran(compiled, netlist, command: TranCommand, args) -> None:
    import contextlib

    telemetry_wanted = (
        args.heartbeat or args.progress or args.serve_metrics is not None
    )
    recorder = None
    if args.trace or args.metrics or telemetry_wanted:
        from repro.instrument import Recorder

        recorder = Recorder(capture_events=bool(args.trace))
    with contextlib.ExitStack() as scopes:
        if args.serve_metrics is not None:
            from repro.instrument import MetricsServer

            server = scopes.enter_context(
                MetricsServer(recorder, port=args.serve_metrics)
            )
            print(f"* /metrics on http://127.0.0.1:{server.port}/metrics")
        if args.heartbeat or args.progress:
            from repro.instrument import heartbeat_for

            scopes.enter_context(
                heartbeat_for(
                    recorder,
                    interval=args.heartbeat_interval,
                    jsonl=args.heartbeat,
                    progress=args.progress,
                )
            )
        ensemble = None
        wtm = None
        if args.partitions:
            report = None
            # WTM partitions the raw netlist circuit before compilation;
            # --wavepipe here selects the per-partition pipelining scheme
            # rather than a monolithic pipelined run.
            wtm = simulate(
                netlist.circuit,
                analysis="wtm",
                tstop=command.tstop,
                tstep=command.tstep,
                options=netlist.options,
                scheme=args.wavepipe,
                threads=args.threads,
                executor=args.executor,
                instrument=recorder,
                partitions=args.partitions,
                mode=args.wtm_mode,
                windows=args.windows,
            )
            result = wtm
        elif args.wavepipe:
            report = compare_with_sequential(
                compiled,
                command.tstop,
                scheme=args.wavepipe,
                threads=args.threads,
                tstep=command.tstep,
                options=netlist.options,
                executor=args.executor,
                instrument=recorder,
            )
            result = report.pipelined
        elif args.ensemble:
            report = None
            # The ensemble facade rebuilds per-variant circuits from the
            # raw netlist circuit, so it bypasses the compiled form.
            ensemble = simulate(
                netlist.circuit,
                tstop=command.tstop,
                tstep=command.tstep,
                options=netlist.options,
                instrument=recorder,
                ensemble=args.ensemble,
                jitter=args.jitter,
                seed=args.seed,
            )
            result = ensemble[0]
        else:
            report = None
            result = simulate(
                compiled,
                analysis="transient",
                tstop=command.tstop,
                tstep=command.tstep,
                options=netlist.options,
                instrument=recorder,
            )
    if report is not None:
        print(f"* wavepipe {report.summary()}")
    elif wtm is not None:
        raw = wtm.raw
        state = "converged" if raw.converged else "NOT CONVERGED"
        scheme_note = f", {args.wavepipe} pipelining" if args.wavepipe else ""
        print(
            f"* wtm: {raw.partitions} partitions ({raw.mode}{scheme_note}), "
            f"{raw.outer_iterations} outer iterations over {raw.windows} "
            f"window(s), {state}; virtual work "
            f"{raw.stats.virtual_total:.0f} vs serial {raw.stats.serial_total:.0f}"
        )
    elif ensemble is not None:
        print(
            f"* ensemble: {ensemble.sims} variants in lockstep, "
            f"{ensemble.stats.accepted_points} shared points, "
            f"{ensemble.stats.rejected_points} rejected, "
            f"{ensemble.stats.newton_iterations} Newton iterations"
        )
    else:
        print(
            f"* transient: {result.stats.accepted_points} points, "
            f"{result.stats.rejected_points} rejected, "
            f"{result.stats.newton_iterations} Newton iterations"
        )
    if args.heartbeat:
        print(f"* heartbeats written to {args.heartbeat}")

    if args.metrics and result.metrics is not None:
        print(result.metrics.summary())
    if args.trace and recorder is not None:
        from repro.instrument import write_trace

        fmt = write_trace(recorder, args.trace)
        print(f"* {fmt} trace written to {args.trace}")

    signals = args.signals or [n for n in result.waveforms.names if n.startswith("v")][:4]
    grid = np.linspace(0.0, result.final_time, args.samples)
    rows = [
        [format_si(t, "s")] + [result.waveforms[s].at(t) for s in signals]
        for t in grid
    ]
    title = "Transient samples (variant 0)" if ensemble is not None else "Transient samples"
    print(render_table(["time"] + signals, rows, title=title))

    if ensemble is not None:
        rows = [
            [str(k)] + [variant.waveforms[s].values[-1] for s in signals]
            for k, variant in enumerate(ensemble.variants)
        ]
        print(
            render_table(
                ["variant"] + signals, rows,
                title=f"Ensemble spread at t={format_si(result.final_time, 's')}",
            )
        )

    if args.csv:
        from repro.waveform.export import write_csv

        write_csv(result.waveforms, args.csv, args.signals)
        note = " (variant 0)" if ensemble is not None else ""
        print(f"* waveforms written to {args.csv}{note}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
