"""Command-line interface: ``python -m repro <deck.cir> [options]``.

Runs the analyses a SPICE deck requests (``.op``, ``.dc``, ``.tran``) and
prints results as tables; ``--wavepipe SCHEME`` switches the transient to
waveform pipelining and reports the virtual-clock speedup against the
sequential baseline. ``--csv FILE`` exports transient waveforms.

``python -m repro verify`` runs the differential-oracle fuzzing campaign
(:mod:`repro.verify`): random circuits through the full scheme x executor
x reuse lattice, with chaos-scheduled variants.

``python -m repro batch`` runs a batch campaign (:mod:`repro.jobs`):
Monte Carlo / corner / sweep job sets through the cache-aware scheduler,
checkpointed into a campaign store for resume.

Examples::

    python -m repro lowpass.cir
    python -m repro ring.cir --wavepipe combined --threads 4
    python -m repro grid.cir --csv out.csv --signals "v(out)" "i(V1)"
    python -m repro --experiment table_r2          # bench harness access
    python -m repro verify --trials 25 --seed 0    # equivalence fuzzing
    python -m repro batch --circuit rectifier --montecarlo 16 --seed 7 \\
        --store out/rect-mc --backend process --workers 4
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import simulate
from repro.bench.tables import render_table
from repro.core.wavepipe import compare_with_sequential
from repro.errors import ReproError
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem
from repro.netlist.parser import DcCommand, OpCommand, TranCommand, parse_file
from repro.solver.dcop import solve_operating_point
from repro.utils.units import format_si, parse_value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WavePipe-reproduction circuit simulator",
        epilog="Analyses come from the deck's .op/.dc/.tran cards.",
    )
    parser.add_argument("deck", nargs="?", help="SPICE netlist file")
    parser.add_argument(
        "--wavepipe",
        choices=["backward", "forward", "combined"],
        help="run the transient with this waveform-pipelining scheme",
    )
    parser.add_argument(
        "--threads", type=int, default=2, help="thread count for --wavepipe"
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "thread"],
        default="serial",
        help="pipeline runtime (serial = deterministic reference)",
    )
    parser.add_argument("--csv", help="export transient waveforms to this CSV file")
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a transient trace (.json = Chrome trace_event for "
        "Perfetto/chrome://tracing, .jsonl = line-delimited records)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the end-of-run metrics summary for transient analyses",
    )
    parser.add_argument(
        "--signals", nargs="*", help="trace names for printing/CSV (default: node voltages)"
    )
    parser.add_argument(
        "--samples", type=int, default=20, help="printed sample rows for waveforms"
    )
    parser.add_argument(
        "--experiment",
        help="run a registered evaluation experiment (e.g. table_r2, fig_r1) instead of a deck",
    )
    return parser


def build_verify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="Differential-oracle fuzzing: prove scheme x executor x "
        "reuse equivalence on randomly generated circuits",
    )
    parser.add_argument(
        "--trials", type=int, default=10, help="number of random circuits (default 10)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0); same seed "
        "reproduces the identical report byte-for-byte"
    )
    parser.add_argument(
        "--threads", type=int, default=3, help="threads for pipelined configs"
    )
    parser.add_argument(
        "--tol", type=float, default=None,
        help="pass/fail bound on worst relative deviation (default: LTE rung, 2e-2)",
    )
    parser.add_argument(
        "--families", nargs="*", default=None,
        help="restrict generation to these circuit families",
    )
    parser.add_argument(
        "--no-chaos", action="store_true",
        help="skip the chaos-scheduled configurations",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the full FuzzReport as JSON"
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the verify.* / chaos.* counter snapshot",
    )
    parser.add_argument(
        "--list-families", action="store_true",
        help="list the generator families and exit",
    )
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Batch simulation campaigns: Monte Carlo, PVT corners "
        "and parameter sweeps through the cache-aware job scheduler",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--circuit", help="registry benchmark name")
    source.add_argument("--deck", help="SPICE netlist file")
    source.add_argument(
        "--verify-seed", type=int, metavar="SEED",
        help="draw the circuit from the verify generators with this seed",
    )
    parser.add_argument(
        "--families", nargs="*", default=None,
        help="family restriction for --verify-seed draws",
    )
    generator = parser.add_mutually_exclusive_group()
    generator.add_argument(
        "--montecarlo", type=int, metavar="N",
        help="N Monte Carlo variants with seeded parameter jitter",
    )
    generator.add_argument(
        "--corners", nargs="*", metavar="NAME",
        help="PVT corner set (no names = all stock corners)",
    )
    generator.add_argument(
        "--sweep", nargs="+", metavar=("COMP", "VALUE"),
        help="sweep component COMP over the listed values (SI suffixes ok)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="Monte Carlo seed (default 0)"
    )
    parser.add_argument(
        "--jitter", type=float, default=0.05,
        help="Monte Carlo lognormal sigma (default 0.05 ~ 5%%)",
    )
    parser.add_argument(
        "--analysis", choices=["transient", "wavepipe"], default="transient"
    )
    parser.add_argument("--scheme", choices=["backward", "forward", "combined"])
    parser.add_argument(
        "--threads", type=int, default=1, help="threads per job (wavepipe)"
    )
    parser.add_argument("--tstop", type=parse_value, help="transient stop time")
    parser.add_argument("--tstep", type=parse_value, help="suggested first step")
    parser.add_argument(
        "--store", metavar="DIR",
        help="campaign store directory (manifest + result cache); enables "
        "cache hits and checkpoint/resume",
    )
    parser.add_argument(
        "--backend", choices=["serial", "process"], default="serial"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="process-pool size (default 2)"
    )
    parser.add_argument(
        "--timeout", type=float, help="per-job wall-clock limit in seconds"
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for failed/timed-out/crashed jobs (default 1)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.0,
        help="base retry delay in seconds (doubles per round)",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the campaign report as JSON"
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the campaign metrics rollup and jobs.* counters",
    )
    parser.add_argument(
        "--list-circuits", action="store_true",
        help="list the registry benchmark names and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["verify"]:
        return _run_verify(argv[1:])
    if argv[:1] == ["batch"]:
        return _run_batch(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        if args.experiment:
            return _run_experiment(args.experiment)
        if not args.deck:
            build_parser().print_usage()
            print("error: provide a deck file or --experiment", file=sys.stderr)
            return 2
        return _run_deck(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_verify(argv: list[str]) -> int:
    from repro.instrument import Recorder
    from repro.verify import DEFAULT_TOLERANCE, FAMILIES, run_verification

    args = build_verify_parser().parse_args(argv)
    if args.list_families:
        for name in sorted(FAMILIES):
            print(name)
        return 0
    recorder = Recorder(capture_events=False) if args.metrics else None
    try:
        report = run_verification(
            trials=args.trials,
            seed=args.seed,
            threads=args.threads,
            tolerance=DEFAULT_TOLERANCE if args.tol is None else args.tol,
            chaos=not args.no_chaos,
            families=args.families,
            instrument=recorder,
            on_report=lambda trial: print(trial.summary(), flush=True),
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: unknown family {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"* report written to {args.json}")
    if recorder is not None:
        for name in sorted(recorder.counters):
            print(f"  {name} = {recorder.counters[name]:g}")
    return 0 if report.passed else 1


def _run_batch(argv: list[str]) -> int:
    import json as json_module

    from repro.instrument import Recorder
    from repro.jobs import (
        CircuitRef,
        JobSpec,
        monte_carlo,
        param_sweep,
        pvt_corners,
        run_campaign,
        single,
    )

    args = build_batch_parser().parse_args(argv)
    if args.list_circuits:
        from repro.circuits.registry import benchmark_names

        for name in benchmark_names():
            print(name)
        return 0

    try:
        if args.circuit:
            ref = CircuitRef(kind="registry", name=args.circuit)
        elif args.deck:
            with open(args.deck, encoding="utf-8") as handle:
                ref = CircuitRef(kind="netlist", netlist=handle.read())
        elif args.verify_seed is not None:
            ref = CircuitRef(
                kind="verify", seed=args.verify_seed, families=args.families
            )
        else:
            build_batch_parser().print_usage()
            print(
                "error: provide --circuit, --deck or --verify-seed",
                file=sys.stderr,
            )
            return 2

        base = JobSpec(
            circuit=ref,
            analysis=args.analysis,
            tstop=args.tstop,
            tstep=args.tstep,
            scheme=args.scheme,
            threads=args.threads,
        )
        if args.montecarlo is not None:
            campaign = monte_carlo(
                base, n=args.montecarlo, seed=args.seed, jitter=args.jitter
            )
        elif args.corners is not None:
            campaign = pvt_corners(base, corners=args.corners or None)
        elif args.sweep is not None:
            if len(args.sweep) < 2:
                print(
                    "error: --sweep needs a component name and at least one value",
                    file=sys.stderr,
                )
                return 2
            campaign = param_sweep(
                base, args.sweep[0], [parse_value(v) for v in args.sweep[1:]]
            )
        else:
            campaign = single(base)

        recorder = Recorder(capture_events=False) if args.metrics else None
        report = run_campaign(
            campaign,
            store=args.store,
            backend=args.backend,
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            instrument=recorder,
            on_outcome=lambda outcome: print(
                f"  [{outcome.status:>7}] {outcome.spec.label}"
                + (f" ({outcome.error})" if outcome.error else ""),
                flush=True,
            ),
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"* report written to {args.json}")
    if args.metrics:
        print(report.metrics.summary())
        for name in sorted(report.metrics.counters):
            if name.startswith("jobs."):
                print(f"  {name} = {report.metrics.counters[name]:g}")
    return 0 if report.passed else 1


def _run_experiment(exp_id: str) -> int:
    from repro.bench.experiments import run_experiment

    try:
        result = run_experiment(exp_id)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.text)
    return 0


def _run_deck(args) -> int:
    netlist = parse_file(args.deck)
    print(f"* {netlist.title}")
    compiled = compile_circuit(netlist.circuit, netlist.options)
    print(
        f"* {compiled.n} unknowns ({compiled.n_nodes} nodes, "
        f"{compiled.n_branches} branch currents)"
    )

    analyses = netlist.analyses or [OpCommand()]
    for command in analyses:
        if isinstance(command, OpCommand):
            _print_op(compiled, netlist)
        elif isinstance(command, DcCommand):
            _print_dc(compiled, command, args)
        elif isinstance(command, TranCommand):
            _print_tran(compiled, netlist, command, args)
    return 0


def _print_op(compiled, netlist) -> None:
    system = MnaSystem(compiled)
    op = solve_operating_point(system, netlist.options)
    rows = [
        [name, format_si(value, "V" if name.startswith("v") else "A")]
        for name, value in zip(compiled.unknown_names, op.x)
    ]
    print(render_table(["unknown", "value"], rows, title="Operating point"))
    print(f"* strategy: {op.strategy}, {op.iterations} Newton iterations")


def _print_dc(compiled, command: DcCommand, args) -> None:
    count = int(round((command.stop - command.start) / command.step)) + 1
    values = np.linspace(command.start, command.stop, max(count, 2))
    result = simulate(compiled, analysis="dc", source=command.source, values=values)
    signals = args.signals or [n for n in result.curves.names if n.startswith("v")][:4]
    step = max(1, len(values) // args.samples)
    rows = [
        [format_si(v, "")] + [result.curves[s].values[k] for s in signals]
        for k, v in enumerate(values)
        if k % step == 0
    ]
    print(
        render_table(
            [command.source] + signals, rows, title=f"DC sweep of {command.source}"
        )
    )


def _print_tran(compiled, netlist, command: TranCommand, args) -> None:
    recorder = None
    if args.trace or args.metrics:
        from repro.instrument import Recorder

        recorder = Recorder(capture_events=bool(args.trace))
    if args.wavepipe:
        report = compare_with_sequential(
            compiled,
            command.tstop,
            scheme=args.wavepipe,
            threads=args.threads,
            tstep=command.tstep,
            options=netlist.options,
            executor=args.executor,
            instrument=recorder,
        )
        result = report.pipelined
        print(f"* wavepipe {report.summary()}")
    else:
        result = simulate(
            compiled,
            analysis="transient",
            tstop=command.tstop,
            tstep=command.tstep,
            options=netlist.options,
            instrument=recorder,
        )
        print(
            f"* transient: {result.stats.accepted_points} points, "
            f"{result.stats.rejected_points} rejected, "
            f"{result.stats.newton_iterations} Newton iterations"
        )

    if args.metrics and result.metrics is not None:
        print(result.metrics.summary())
    if args.trace and recorder is not None:
        from repro.instrument import write_trace

        fmt = write_trace(recorder, args.trace)
        print(f"* {fmt} trace written to {args.trace}")

    signals = args.signals or [n for n in result.waveforms.names if n.startswith("v")][:4]
    grid = np.linspace(0.0, result.final_time, args.samples)
    rows = [
        [format_si(t, "s")] + [result.waveforms[s].at(t) for s in signals]
        for t in grid
    ]
    print(render_table(["time"] + signals, rows, title="Transient samples"))

    if args.csv:
        from repro.waveform.export import write_csv

        write_csv(result.waveforms, args.csv, args.signals)
        print(f"* waveforms written to {args.csv}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
