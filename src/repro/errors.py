"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any simulator failure. Subclasses
distinguish the phase in which the failure occurred: circuit construction,
netlist parsing, matrix assembly, linear/nonlinear solve, or time stepping.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CircuitError(ReproError):
    """The circuit description is invalid (bad nodes, values, or topology)."""


class NetlistError(ReproError):
    """A SPICE netlist could not be parsed.

    Carries the line number (1-based) when it is known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class UnitError(CircuitError):
    """A numeric value with an engineering suffix could not be parsed."""


class AssemblyError(ReproError):
    """MNA assembly failed (inconsistent dimensions or unknown indices)."""


class SingularMatrixError(ReproError):
    """The circuit matrix is singular or numerically near-singular.

    Usually indicates a floating node, a loop of voltage sources, or a
    cutset of current sources. The offending unknown index is attached
    when the factorisation can identify it.
    """

    def __init__(self, message: str, unknown: str | None = None):
        self.unknown = unknown
        if unknown is not None:
            message = f"{message} (suspect unknown: {unknown})"
        super().__init__(message)


class ConvergenceError(ReproError):
    """Newton-Raphson failed to converge.

    Attributes:
        iterations: number of iterations attempted.
        residual_norm: infinity norm of the final residual, if available.
    """

    def __init__(
        self,
        message: str,
        iterations: int | None = None,
        residual_norm: float | None = None,
    ):
        self.iterations = iterations
        self.residual_norm = residual_norm
        parts = [message]
        if iterations is not None:
            parts.append(f"after {iterations} iterations")
        if residual_norm is not None:
            parts.append(f"residual {residual_norm:.3e}")
        super().__init__(" ".join(parts))


class TimestepError(ReproError):
    """The transient engine could not find an acceptable time step.

    Raised when the step controller shrinks the step below its minimum
    without achieving Newton convergence and an acceptable LTE.
    """


class SimulationError(ReproError):
    """A simulation-level invariant was violated (misuse of an engine)."""
