"""Self-contained HTML timeline for one traced run.

:func:`render_html` turns a trace (events + :class:`ExplainReport`) into
a single HTML document with zero external assets: one horizontal band
per lane, spans drawn as positioned blocks colour-coded by outcome,
hover titles carrying the span details, and the text report inlined
below the timeline. The layout uses the spans' wall-clock window only
for *drawing* — every number printed comes from the deterministic
report.
"""

from __future__ import annotations

import html as _html

from repro.instrument.events import (
    OUTCOME_ACCEPTED,
    OUTCOME_LTE_REJECT,
    OUTCOME_NEWTON_FAIL,
    OUTCOME_SPECULATIVE_HIT,
    OUTCOME_SPECULATIVE_WASTE,
)
from repro.instrument.spans import build_span_tree

#: Outcome -> block colour. Untagged spans render neutral grey.
_COLOURS = {
    OUTCOME_ACCEPTED: "#4caf50",
    OUTCOME_SPECULATIVE_HIT: "#2e7d32",
    OUTCOME_LTE_REJECT: "#ff9800",
    OUTCOME_NEWTON_FAIL: "#f44336",
    OUTCOME_SPECULATIVE_WASTE: "#b71c1c",
    "converged": "#81c784",
}
_DEFAULT_COLOUR = "#90a4ae"

#: Hard cap on drawn spans; beyond it the densest (shortest) spans are
#: dropped first so the page stays loadable for huge traces.
MAX_DRAWN_SPANS = 4000

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 1.5em;
       background: #fafafa; color: #212121; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
.timeline { position: relative; border: 1px solid #ddd; background: #fff; }
.laneband { position: relative; height: 26px; border-bottom: 1px solid #eee; }
.laneband .lanelabel { position: absolute; left: 4px; top: 4px;
  font-size: 11px; color: #757575; z-index: 2; pointer-events: none; }
.span { position: absolute; top: 4px; height: 18px; border-radius: 2px;
  opacity: 0.9; min-width: 1px; }
.legend span { display: inline-block; margin-right: 1em; font-size: 12px; }
.legend i { display: inline-block; width: 10px; height: 10px;
  margin-right: 4px; border-radius: 2px; }
pre.report { background: #263238; color: #eceff1; padding: 1em;
  overflow-x: auto; font-size: 13px; line-height: 1.45; }
"""


def _span_title(node) -> str:
    bits = [f"{node.path}"]
    if node.outcome:
        bits.append(f"outcome={node.outcome}")
    if node.cost:
        bits.append(f"cost={node.cost:g} wu")
    if node.t_sim is not None:
        bits.append(f"t_sim={node.t_sim:g}")
    bits.append(f"lane={node.lane}")
    return " | ".join(bits)


def render_html(events, report, title: str = "repro explain") -> str:
    """One self-contained HTML page: lane timeline + text report."""
    from repro.diagnose.explain import render_text

    tree = build_span_tree(events)
    nodes = [n for n in tree.walk()]
    if len(nodes) > MAX_DRAWN_SPANS:
        nodes = sorted(nodes, key=lambda n: -n.dur)[:MAX_DRAWN_SPANS]
    t0 = min((n.ts for n in nodes), default=0.0)
    t1 = max((n.end for n in nodes), default=1.0)
    window = max(t1 - t0, 1e-12)

    lanes: dict[int, list] = {}
    for node in nodes:
        lanes.setdefault(node.lane, []).append(node)

    bands: list[str] = []
    for lane in sorted(lanes):
        label = "scheduler" if lane == 0 else f"worker-{lane}"
        blocks = [f'<div class="laneband"><span class="lanelabel">{label}</span>']
        for node in sorted(lanes[lane], key=lambda n: (n.ts, -n.dur)):
            left = 100.0 * (node.ts - t0) / window
            width = max(100.0 * node.dur / window, 0.05)
            colour = _COLOURS.get(node.outcome or "", _DEFAULT_COLOUR)
            blocks.append(
                f'<div class="span" style="left:{left:.3f}%;width:{width:.3f}%;'
                f'background:{colour}" title="{_html.escape(_span_title(node))}">'
                "</div>"
            )
        blocks.append("</div>")
        bands.append("".join(blocks))

    legend = "".join(
        f'<span><i style="background:{colour}"></i>{_html.escape(name)}</span>'
        for name, colour in list(_COLOURS.items()) + [("untagged", _DEFAULT_COLOUR)]
    )
    dropped = max(0, len(list(tree.walk())) - len(nodes))
    note = (
        f"<p><em>{dropped} short span(s) omitted from the drawing "
        "(report totals include them).</em></p>"
        if dropped
        else ""
    )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{_html.escape(title)}</title>
<style>{_STYLE}</style></head>
<body>
<h1>{_html.escape(title)}</h1>
<p>{len(tree.nodes)} spans across {len(lanes)} lane(s);
{tree.malformed} malformed.</p>
<div class="legend">{legend}</div>
<h2>Timeline</h2>
<div class="timeline">{"".join(bands)}</div>
{note}
<h2>Diagnosis</h2>
<pre class="report">{_html.escape(render_text(report))}</pre>
</body></html>
"""
