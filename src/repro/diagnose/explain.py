"""Causal diagnosis of one traced run.

:func:`explain_trace` reads a flat event list plus the recorder's
summary snapshot (counters / histograms / span-path totals) and distils
four findings:

* **critical path** — on the virtual clock, which lane bounded the run:
  for a pipelined trace, every ``stage_run`` span is attributed to the
  costliest ``stage_task`` under it and those bounding costs are folded
  per lane; for a campaign trace, ``job_run`` spans are ranked by cost;
  a sequential trace trivially pins lane 0.
* **rejection taxonomy** — every rejected candidate step classified by
  cause (LTE, Newton failure, bypass-stall fallback), cross-checked
  between span outcome tags, ``lte_reject`` events and the controller's
  ``controller.reject.<cause>`` counters, plus the step-size timeline.
* **speculation economics** — useful vs wasted speculative work units
  per the ``speculate.*`` counters, and the depth-vs-hit-rate curve from
  ``speculate`` events.
* **solver-phase split** — device-eval / assembly / factor / backsolve
  virtual cost from the synthesized phase spans (with per-device-class
  attribution from the ``classes`` attr), next to the LU reuse ledger.

Everything in the report is a count, a virtual-clock quantity or a
simulated time — never a wall-clock reading — so the JSON rendering of
the same deterministic run is byte-identical across reruns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.instrument.events import (
    JOB_RUN,
    LTE_REJECT,
    PHASE_ASSEMBLY,
    PHASE_BACKSOLVE,
    PHASE_DEVICE_EVAL,
    PHASE_FACTOR,
    QUEUE_WAIT,
    RESULT_UPLOAD,
    SERVICE_DEDUP,
    SERVICE_JOB,
    SERVICE_REQUEST,
    SERVICE_SOLVE,
    SPECULATE,
    STAGE_RUN,
    STAGE_TASK,
    STEP_ACCEPT,
    TIMESTEP,
    WTM_OUTER_ITER,
    WTM_PARTITION,
    OUTCOME_ACCEPTED,
    OUTCOME_LTE_REJECT,
    OUTCOME_NEWTON_FAIL,
    OUTCOME_SPECULATIVE_HIT,
    OUTCOME_SPECULATIVE_WASTE,
    TraceEvent,
)
from repro.instrument.spans import build_span_tree, outcome_counts

#: Span names that represent one candidate time point.
CANDIDATE_SPANS = (TIMESTEP, STAGE_TASK)

#: Solver-phase span names, in pipeline order.
PHASE_SPANS = (PHASE_DEVICE_EVAL, PHASE_ASSEMBLY, PHASE_FACTOR, PHASE_BACKSOLVE)

#: Every outcome tag the engine emits. An outcome outside this vocabulary
#: is an *unclassified* candidate — the report's classified fraction
#: (an acceptance gate) counts them.
KNOWN_OUTCOMES = frozenset(
    {
        OUTCOME_ACCEPTED,
        OUTCOME_LTE_REJECT,
        OUTCOME_NEWTON_FAIL,
        OUTCOME_SPECULATIVE_HIT,
        OUTCOME_SPECULATIVE_WASTE,
    }
)

#: Prefix of the controller's per-cause rejection counters.
_REJECT_PREFIX = "controller.reject."

#: Cap on the step-size timeline carried in the report; a multi-thousand
#: point run still yields a readable JSON document. The truncation is
#: announced in the report itself (``timeline_truncated``).
TIMELINE_CAP = 2000


@dataclass
class ExplainReport:
    """Deterministic diagnosis of one trace (see module docstring)."""

    source: str
    spans: dict = field(default_factory=dict)
    critical_path: dict = field(default_factory=dict)
    rejections: dict = field(default_factory=dict)
    speculation: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "spans": self.spans,
            "critical_path": self.critical_path,
            "rejections": self.rejections,
            "speculation": self.speculation,
            "phases": self.phases,
            "counters": self.counters,
        }

    def to_json(self) -> str:
        """Canonical JSON rendering: sorted keys, stable float repr."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _round(value: float) -> float:
    """Fold float noise out of derived ratios (sums stay exact)."""
    return round(float(value), 9)


#: Stitched service tiers in request-lifecycle order (queue wait, solve,
#: result upload); the order also breaks cost ties deterministically.
SERVICE_TIERS = (QUEUE_WAIT, SERVICE_SOLVE, RESULT_UPLOAD)


def _service_path(tree) -> dict | None:
    """Cross-node request breakdown for a stitched service trace.

    Service traces are the one tier where the costs are wall-clock
    **seconds** (the stitcher's choice: request latency has no
    virtual-clock answer). Worker snapshots re-parented beneath each
    ``service_solve`` still carry ``job_run`` spans, so this check must
    run before the campaign scan or a farm trace would be misread as a
    plain campaign.
    """
    requests = [n for n in tree.walk() if n.name == SERVICE_REQUEST]
    if not requests:
        return None
    tiers = {name: {"count": 0, "cost": 0.0} for name in SERVICE_TIERS}
    tenants: dict[str, dict] = {}
    jobs = []
    dedup_served = 0
    for request in requests:
        tenant = str(request.attrs.get("tenant", "default"))
        entry = tenants.setdefault(
            tenant, {"requests": 0, "jobs": 0, "cost": 0.0}
        )
        entry["requests"] += 1
        for job in request.children:
            if job.name != SERVICE_JOB:
                continue
            jobs.append(job)
            entry["jobs"] += 1
            entry["cost"] += job.cost
            for child in job.children:
                if child.name in tiers:
                    tiers[child.name]["count"] += 1
                    tiers[child.name]["cost"] += child.cost
                elif child.name == SERVICE_DEDUP:
                    dedup_served += 1
    tier_total = sum(entry["cost"] for entry in tiers.values())
    for entry in tiers.values():
        entry["share"] = _round(
            entry["cost"] / tier_total if tier_total > 0 else 0.0
        )
    critical_tier = max(SERVICE_TIERS, key=lambda name: tiers[name]["cost"])
    ranked = sorted(
        jobs,
        key=lambda n: (
            -n.cost,
            str(n.attrs.get("label", "")),
            str(n.attrs.get("hash", "")),
        ),
    )
    slowest = [
        {
            "label": str(n.attrs.get("label") or n.attrs.get("hash", "")),
            "cost": n.cost,
            "status": n.outcome or str(n.attrs.get("status", "")),
            "tenant": str(n.attrs.get("tenant", "default")),
            "node": n.attrs.get("node"),
            "cached": bool(n.attrs.get("cached", False)),
        }
        for n in ranked[:10]
    ]
    return {
        "kind": "service",
        "requests": len(requests),
        "jobs": len(jobs),
        "dedup_served": dedup_served,
        "bounding_cost_total": sum(n.cost for n in jobs),
        "tiers": tiers,
        "critical_tier": critical_tier,
        "tenants": {name: tenants[name] for name in sorted(tenants)},
        "slowest_jobs": slowest,
        "critical_job": slowest[0]["label"] if slowest else None,
        "critical_lane": ranked[0].lane if ranked else None,
    }


def _critical_path(tree, events) -> dict:
    """Attribute the run's virtual-clock cost to its bounding lane."""
    # Stitched farm traces first: they embed worker job_run spans under
    # their solve tiers, so any later scan would misclassify them.
    service = _service_path(tree)
    if service is not None:
        return service

    # Campaign traces rank whole jobs: the stage spans riding along in
    # the workers' event tails are ring-buffer fragments (the *end* of
    # each job only) and would misattribute the run if folded per lane.
    jobs = [n for n in tree.walk() if n.name == JOB_RUN]
    if jobs:
        ranked = sorted(
            jobs, key=lambda n: (-n.cost, str(n.attrs.get("label", "")))
        )
        slowest = [
            {
                "label": str(n.attrs.get("label", "")),
                "cost": n.cost,
                "status": n.outcome or str(n.attrs.get("status", "")),
            }
            for n in ranked[:10]
        ]
        return {
            "kind": "campaign",
            "jobs": len(jobs),
            "bounding_cost_total": sum(n.cost for n in jobs),
            "slowest_jobs": slowest,
            "critical_job": slowest[0]["label"] if slowest else None,
            "critical_lane": ranked[0].lane if ranked else None,
        }

    # WTM traces must be recognised before the stage scan: each partition
    # solve nests its own stage_run spans, and folding those per lane
    # would attribute the run to the partitions' *internal* pipelines
    # instead of the outer Gauss-Jacobi/Seidel sweeps. Here every outer
    # iteration is bounded by its costliest partition solve (exactly the
    # virtual-clock rule the coordinator books for a jacobi stage; for
    # seidel it names the dominant partition of each serial sweep).
    outer_iters = [n for n in tree.walk() if n.name == WTM_OUTER_ITER]
    partition_nodes = [
        c for n in outer_iters for c in n.children if c.name == WTM_PARTITION
    ]
    if partition_nodes:
        lanes: dict[int, dict] = {}
        total = 0.0
        for sweep in outer_iters:
            parts = [c for c in sweep.children if c.name == WTM_PARTITION]
            if not parts:
                continue
            # ties break toward the lowest partition index for stability
            bounding = max(
                parts,
                key=lambda n: (n.cost, -int(n.attrs.get("partition", 0))),
            )
            index = int(bounding.attrs.get("partition", 0))
            entry = lanes.setdefault(
                index,
                {"lane": index, "stages_bounded": 0, "bounding_cost": 0.0},
            )
            entry["stages_bounded"] += 1
            entry["bounding_cost"] += bounding.cost
            total += bounding.cost
        ranked = sorted(
            lanes.values(), key=lambda e: (-e["bounding_cost"], e["lane"])
        )
        for entry in ranked:
            entry["share"] = _round(
                entry["bounding_cost"] / total if total > 0 else 0.0
            )
        return {
            "kind": "wtm",
            "stages": len(outer_iters),
            "partitions": len(lanes),
            "bounding_cost_total": total,
            "lanes": ranked,
            "critical_lane": ranked[0]["lane"] if ranked else None,
        }

    stage_nodes = [n for n in tree.walk() if n.name == STAGE_RUN]
    if stage_nodes:
        lanes: dict[int, dict] = {}
        total = 0.0
        for stage in stage_nodes:
            tasks = [c for c in stage.children if c.name == STAGE_TASK]
            if not tasks:
                continue
            # ties break toward the lowest lane so attribution is stable
            bounding = max(tasks, key=lambda n: (n.cost, -n.lane))
            entry = lanes.setdefault(
                bounding.lane,
                {"lane": bounding.lane, "stages_bounded": 0, "bounding_cost": 0.0},
            )
            entry["stages_bounded"] += 1
            entry["bounding_cost"] += bounding.cost
            total += bounding.cost
        ranked = sorted(
            lanes.values(), key=lambda e: (-e["bounding_cost"], e["lane"])
        )
        for entry in ranked:
            entry["share"] = _round(
                entry["bounding_cost"] / total if total > 0 else 0.0
            )
        return {
            "kind": "pipeline",
            "stages": len(stage_nodes),
            "bounding_cost_total": total,
            "lanes": ranked,
            "critical_lane": ranked[0]["lane"] if ranked else None,
        }

    steps = [n for n in tree.walk() if n.name == TIMESTEP]
    total = sum(n.cost for n in steps)
    return {
        "kind": "sequential",
        "stages": len(steps),
        "bounding_cost_total": total,
        "lanes": [
            {
                "lane": 0,
                "stages_bounded": len(steps),
                "bounding_cost": total,
                "share": 1.0 if steps else 0.0,
            }
        ],
        "critical_lane": 0,
    }


def _rejections(tree, events, counters) -> dict:
    """Classify every rejected candidate step by cause."""
    candidates = outcome_counts(tree, names=CANDIDATE_SPANS)
    lte_events = sum(1 for ev in events if ev.name == LTE_REJECT)
    spans_lte = candidates.get(OUTCOME_LTE_REJECT, 0)
    spans_newton = candidates.get(OUTCOME_NEWTON_FAIL, 0)
    controller_newton = int(counters.get(_REJECT_PREFIX + "newton_fail", 0))
    stall = int(counters.get(_REJECT_PREFIX + "stall_guard", 0))

    # LTE rejections: every one emits an ``lte_reject`` event (corrective
    # re-solves have no task span, so the event count is the superset);
    # the ``lte.rejects`` counter backs it up if the ring buffer evicted
    # events. Newton failures: span tags cover guard-salvaged producer
    # failures the controller never saw; the controller counter covers
    # sequential retries when spans were evicted.
    lte = max(lte_events, spans_lte, int(counters.get("lte.rejects", 0)))
    newton = max(spans_newton, controller_newton)
    causes = {
        OUTCOME_LTE_REJECT: lte,
        OUTCOME_NEWTON_FAIL: newton,
        "stall_guard": stall,
    }
    total = sum(causes.values())

    # A candidate span whose outcome tag is outside the engine vocabulary
    # cannot be attributed to a cause; untagged candidates are unused
    # guard points (insurance that was never needed), not rejections.
    unknown = sum(
        count
        for outcome, count in candidates.items()
        if outcome not in KNOWN_OUTCOMES and outcome != "untagged"
    )
    classified = total
    total_with_unknown = total + unknown

    timeline = []
    for ev in events:
        if ev.name == STEP_ACCEPT:
            timeline.append(
                {
                    "t": ev.t_sim,
                    "h": ev.attrs.get("h"),
                    "event": "accept",
                }
            )
        elif ev.name == LTE_REJECT:
            timeline.append(
                {
                    "t": ev.t_sim,
                    "h": ev.attrs.get("h"),
                    "h_optimal": ev.attrs.get("h_optimal"),
                    "event": "reject",
                }
            )
    truncated = max(0, len(timeline) - TIMELINE_CAP)
    if truncated:
        timeline = timeline[:TIMELINE_CAP]

    return {
        "total": total_with_unknown,
        "causes": causes,
        "classified": classified,
        "classified_fraction": _round(
            classified / total_with_unknown if total_with_unknown else 1.0
        ),
        "candidate_outcomes": candidates,
        "step_timeline": timeline,
        "timeline_truncated": truncated,
    }


def _speculation(events, counters) -> dict:
    """Speculation economics plus the depth-vs-hit-rate curve."""
    useful = float(counters.get("speculate.useful_work", 0.0))
    wasted = float(counters.get("speculate.wasted_work", 0.0))
    risked = useful + wasted
    depth_stats: dict[int, dict] = {}
    resolved = successes = hits = 0
    for ev in events:
        if ev.name != SPECULATE:
            continue
        resolved += 1
        depth = int(ev.attrs.get("depth", 1))
        entry = depth_stats.setdefault(
            depth, {"depth": depth, "resolved": 0, "successes": 0, "hits": 0}
        )
        entry["resolved"] += 1
        if ev.attrs.get("success"):
            entry["successes"] += 1
            successes += 1
        if ev.attrs.get("hit"):
            entry["hits"] += 1
            hits += 1
    curve = []
    for depth in sorted(depth_stats):
        entry = depth_stats[depth]
        entry["hit_rate"] = _round(entry["hits"] / entry["resolved"])
        curve.append(entry)
    return {
        "useful_work": useful,
        "wasted_work": wasted,
        "work_risked": risked,
        "efficiency": _round(useful / risked if risked > 0 else 1.0),
        "resolved": resolved,
        "successes": successes,
        "hits": hits,
        "attempts": int(
            counters.get("speculate.successes", 0)
            + counters.get("speculate.misses", 0)
        ),
        "depth_curve": curve,
    }


def _phases(tree, counters) -> dict:
    """Solver-phase virtual-cost split with per-device-class attribution."""
    split: dict[str, dict] = {
        name: {"count": 0, "cost": 0.0} for name in PHASE_SPANS
    }
    by_class: dict[str, float] = {}
    for node in tree.walk():
        if node.name not in split:
            continue
        entry = split[node.name]
        entry["count"] += 1
        entry["cost"] += node.cost
        if node.name == PHASE_DEVICE_EVAL:
            for cls, units in (node.attrs.get("classes") or {}).items():
                by_class[cls] = by_class.get(cls, 0.0) + float(units)
    total = sum(entry["cost"] for entry in split.values())
    for entry in split.values():
        entry["share"] = _round(entry["cost"] / total if total > 0 else 0.0)
    split[PHASE_DEVICE_EVAL]["by_class"] = dict(sorted(by_class.items()))
    return {
        **split,
        "total_cost": total,
        "lu": {
            "factorisations": int(counters.get("lu.factor", 0)),
            "refactorisations": int(counters.get("lu.refactor", 0)),
            "solves": int(counters.get("lu.solve", 0)),
            "reuse_hits": int(counters.get("lu.reuse_hit", 0)),
        },
    }


#: Counters surfaced verbatim in the report (a diagnosis-relevant subset;
#: the full set stays in the trace footer).
_REPORT_COUNTERS = (
    "points.accepted",
    "lte.rejects",
    "newton.solves",
    "newton.iterations",
    "newton.failures",
    "pipeline.stages",
    "controller.accepts",
    "jobs.completed",
    "jobs.failed",
    "jobs.cache_hits",
    "wtm.outer_iterations",
    "wtm.partition_solves",
    "wtm.converged",
    "wtm.not_converged",
)


def explain_trace(
    events: list[TraceEvent], summary: dict | None = None, source: str = "trace"
) -> ExplainReport:
    """Diagnose a run from its flat event list plus summary snapshot."""
    summary = summary or {}
    counters = dict(summary.get("counters") or {})
    tree = build_span_tree(events)
    span_total = len(tree.nodes)
    spans = {
        "count": span_total,
        "malformed": tree.malformed,
        "problems": list(tree.problems),
        "roots": len(tree.roots),
    }
    report = ExplainReport(
        source=source,
        spans=spans,
        critical_path=_critical_path(tree, events),
        rejections=_rejections(tree, events, counters),
        speculation=_speculation(events, counters),
        phases=_phases(tree, counters),
        counters={
            name: counters[name] for name in _REPORT_COUNTERS if name in counters
        },
    )
    reject_prefixed = {
        name: int(val)
        for name, val in sorted(counters.items())
        if name.startswith(_REJECT_PREFIX)
    }
    if reject_prefixed:
        report.counters.update(reject_prefixed)
    return report


def explain_recorder(recorder, source: str = "run") -> ExplainReport:
    """Diagnose a live :class:`~repro.instrument.Recorder`."""
    return explain_trace(list(recorder.events), recorder.snapshot(), source=source)


def explain_jsonl(path) -> ExplainReport:
    """Diagnose a ``--trace`` JSONL file."""
    from repro.instrument.exporters import read_jsonl

    events, summary = read_jsonl(path)
    return explain_trace(events, summary, source=str(path))


def _fmt_units(value: float) -> str:
    return f"{value:,.0f}" if value == int(value) else f"{value:,.1f}"


def render_text(report: ExplainReport) -> str:
    """Human-readable rendering of an :class:`ExplainReport`."""
    lines: list[str] = []
    spans = report.spans
    lines.append(f"trace: {report.source}")
    lines.append(
        f"spans: {spans.get('count', 0)} "
        f"({spans.get('roots', 0)} roots, {spans.get('malformed', 0)} malformed)"
    )
    for problem in spans.get("problems", [])[:5]:
        lines.append(f"  ! {problem}")

    cp = report.critical_path
    lines.append("")
    kind = cp.get("kind")
    if kind == "service":
        lines.append("critical path (wall clock)")
        lines.append(
            f"  {cp.get('requests', 0)} request(s), {cp.get('jobs', 0)} "
            f"job(s), {cp.get('bounding_cost_total', 0.0):.3f} s end-to-end"
        )
        tiers = cp.get("tiers", {})
        for name in SERVICE_TIERS:
            entry = tiers.get(name, {})
            if entry.get("count"):
                lines.append(
                    f"  {name}: {entry['cost']:.3f} s "
                    f"({entry['share']:.0%}, {entry['count']} span(s))"
                )
        if cp.get("critical_tier"):
            lines.append(f"  dominated by tier {cp['critical_tier']!r}")
        for job in cp.get("slowest_jobs", [])[:5]:
            where = f" on {job['node']}" if job.get("node") else ""
            cached = " [dedup-served]" if job.get("cached") else ""
            lines.append(
                f"  job {job['label'] or '<unnamed>'}: {job['cost']:.3f} s "
                f"({job['status']}, tenant {job['tenant']}){where}{cached}"
            )
        if cp.get("critical_job"):
            lines.append(f"  bounded by job {cp['critical_job']!r}")
        for tenant, entry in cp.get("tenants", {}).items():
            lines.append(
                f"  tenant {tenant}: {entry['requests']} request(s), "
                f"{entry['jobs']} job(s), {entry['cost']:.3f} s"
            )
        if cp.get("dedup_served"):
            lines.append(
                f"  dedup served {cp['dedup_served']} duplicate "
                f"submission(s) at zero cost"
            )
    elif kind == "campaign":
        lines.append("critical path (virtual clock)")
        lines.append(
            f"  campaign of {cp.get('jobs', 0)} jobs, "
            f"{_fmt_units(cp.get('bounding_cost_total', 0.0))} work units total"
        )
        for job in cp.get("slowest_jobs", [])[:5]:
            lines.append(
                f"  job {job['label'] or '<unnamed>'}: "
                f"{_fmt_units(job['cost'])} wu ({job['status']})"
            )
        if cp.get("critical_job"):
            lines.append(f"  bounded by job {cp['critical_job']!r}")
    elif kind == "wtm":
        lines.append("critical path (virtual clock)")
        lines.append(
            f"  {cp.get('stages', 0)} WTM outer sweeps over "
            f"{cp.get('partitions', 0)} partition(s), bounding cost "
            f"{_fmt_units(cp.get('bounding_cost_total', 0.0))} wu"
        )
        for entry in cp.get("lanes", [])[:6]:
            lines.append(
                f"  partition {entry['lane']}: bounded "
                f"{entry['stages_bounded']} sweep(s), "
                f"{_fmt_units(entry['bounding_cost'])} wu "
                f"({entry['share']:.0%} of the critical path)"
            )
        if cp.get("critical_lane") is not None:
            lines.append(f"  bounded by partition {cp['critical_lane']}")
    else:
        label = "pipeline stages" if kind == "pipeline" else "sequential steps"
        lines.append("critical path (virtual clock)")
        lines.append(
            f"  {cp.get('stages', 0)} {label}, bounding cost "
            f"{_fmt_units(cp.get('bounding_cost_total', 0.0))} wu"
        )
        for entry in cp.get("lanes", [])[:6]:
            lines.append(
                f"  lane {entry['lane']}: bounded {entry['stages_bounded']} "
                f"stage(s), {_fmt_units(entry['bounding_cost'])} wu "
                f"({entry['share']:.0%} of the critical path)"
            )
        if cp.get("critical_lane") is not None:
            lines.append(f"  bounded by lane {cp['critical_lane']}")

    rej = report.rejections
    lines.append("")
    lines.append(
        f"rejections: {rej.get('total', 0)} "
        f"({rej.get('classified_fraction', 1.0):.0%} classified)"
    )
    cause_names = {
        OUTCOME_LTE_REJECT: "LTE (truncation error)",
        OUTCOME_NEWTON_FAIL: "Newton non-convergence",
        "stall_guard": "bypass stall fallback",
    }
    for cause, count in sorted(rej.get("causes", {}).items()):
        if count:
            lines.append(f"  {cause_names.get(cause, cause)}: {count}")
    accepted = rej.get("candidate_outcomes", {}).get(OUTCOME_ACCEPTED, 0)
    if accepted:
        lines.append(f"  accepted candidates: {accepted}")

    spec = report.speculation
    lines.append("")
    if spec.get("resolved", 0) or spec.get("work_risked", 0.0) > 0:
        lines.append(
            f"speculation: {spec['resolved']} resolved, "
            f"{spec['hits']} hits, "
            f"{_fmt_units(spec['work_risked'])} wu risked "
            f"({spec['efficiency']:.0%} efficient)"
        )
        for entry in spec.get("depth_curve", []):
            lines.append(
                f"  depth {entry['depth']}: {entry['hits']}/{entry['resolved']} "
                f"hits ({entry['hit_rate']:.0%})"
            )
    else:
        lines.append("speculation: none (sequential run or no speculative points)")

    ph = report.phases
    lines.append("")
    lines.append(
        f"solver phases: {_fmt_units(ph.get('total_cost', 0.0))} wu attributed"
    )
    for name in PHASE_SPANS:
        entry = ph.get(name, {})
        if entry.get("count"):
            lines.append(
                f"  {name}: {_fmt_units(entry['cost'])} wu "
                f"({entry['share']:.0%}, {entry['count']} span(s))"
            )
        if name == PHASE_DEVICE_EVAL:
            for cls, units in (entry.get("by_class") or {}).items():
                lines.append(f"    class {cls}: {_fmt_units(units)} wu")
    lu = ph.get("lu", {})
    if any(lu.values()):
        lines.append(
            f"  LU: {lu['factorisations']} factor + {lu['refactorisations']} "
            f"refactor, {lu['solves']} solves, {lu['reuse_hits']} reuse hits"
        )
    return "\n".join(lines) + "\n"
