"""Automated run diagnosis: turn a trace into an explanation.

``repro.diagnose`` consumes the span-tree traces emitted by
:mod:`repro.instrument` and answers the questions a WavePipe run raises:
which lane bounded the pipeline, why steps were rejected, whether
speculation paid for itself, and where the solver's virtual-clock budget
went. :func:`explain_trace` builds the deterministic report;
:func:`render_text` / :func:`render_html` present it; the CLI front door
is ``python -m repro explain``.
"""

from repro.diagnose.explain import (
    ExplainReport,
    explain_jsonl,
    explain_recorder,
    explain_trace,
    render_text,
)
from repro.diagnose.html import render_html

__all__ = [
    "ExplainReport",
    "explain_jsonl",
    "explain_recorder",
    "explain_trace",
    "render_html",
    "render_text",
]
