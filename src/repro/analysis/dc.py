"""DC sweep analysis.

Sweeps the level of one independent source, solving the operating point
at each value with continuation (each solution seeds the next) — the
standard way transfer curves (e.g. an inverter's VTC) are produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Dc
from repro.errors import SimulationError
from repro.mna.compiler import CompiledCircuit, compile_circuit
from repro.mna.system import MnaSystem
from repro.solver.dcop import solve_operating_point
from repro.utils.options import SimOptions
from repro.waveform.waveform import WaveformSet


@dataclass
class DcSweepResult:
    """Solutions across the swept values.

    ``curves`` is indexed like a transient :class:`WaveformSet`, with the
    swept source level playing the role of the time axis.
    """

    source: str
    values: np.ndarray
    curves: WaveformSet
    iterations: int


def dc_sweep(
    circuit: Circuit | CompiledCircuit,
    source: str,
    values,
    options: SimOptions | None = None,
) -> DcSweepResult:
    """Sweep independent source *source* through *values*.

    Raises:
        SimulationError: when *source* names no independent V/I source.
    """
    compiled = (
        circuit
        if isinstance(circuit, CompiledCircuit)
        else compile_circuit(circuit, options)
    )
    options = options or compiled.options
    values = np.asarray(list(values), dtype=float)
    if values.size < 1:
        raise SimulationError("dc sweep needs at least one value")
    if values.size >= 2 and np.any(np.diff(values) <= 0):
        raise SimulationError("dc sweep values must be strictly increasing")

    bank, index = _find_source(compiled, source)
    original = bank.waveforms[index]
    system = MnaSystem(compiled)
    solutions = []
    iterations = 0
    x_prev = None
    try:
        for value in values:
            bank.waveforms[index] = Dc(float(value))
            op = solve_operating_point(system, options, x0=x_prev)
            iterations += op.iterations
            solutions.append(op.x)
            x_prev = op.x
    finally:
        bank.waveforms[index] = original

    matrix = np.vstack(solutions)
    curves = WaveformSet(
        values,
        {name: matrix[:, i] for i, name in enumerate(compiled.unknown_names)},
    )
    return DcSweepResult(source, values, curves, iterations)


def _find_source(compiled: CompiledCircuit, name: str):
    for bank in (compiled.vsource_bank, compiled.isource_bank):
        if bank is not None and name in bank.names:
            return bank, bank.names.index(name)
    raise SimulationError(f"{name!r} is not an independent source in this circuit")
