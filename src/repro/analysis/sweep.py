"""Generic parameter sweeps: run a study across circuit or option values.

The workhorse behind "how does X vary with Y" questions — corner tables,
tolerance studies, sizing sweeps. A sweep takes:

* a **circuit factory** accepting the swept parameter (or a fixed circuit
  with an options field swept instead),
* the transient window,
* one or more **metrics**: callables mapping a
  :class:`~repro.engine.transient.TransientResult` to a float
  (:mod:`repro.waveform.measure` provides the usual ones).

Results come back as a :class:`SweepResult` table that renders itself and
exposes the raw columns for further analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bench.tables import render_table
from repro.circuit.circuit import Circuit
from repro.core.wavepipe import run_wavepipe
from repro.engine.transient import TransientResult, run_transient
from repro.errors import SimulationError
from repro.utils.options import SimOptions


@dataclass
class SweepResult:
    """Outcome of a parameter sweep.

    Attributes:
        parameter: name of the swept quantity.
        values: swept values, in run order.
        metrics: metric name -> per-value results (NaN where a metric
            returned None or the run failed and ``skip_failures`` was on).
        failures: value -> error message for failed runs.
    """

    parameter: str
    values: list
    metrics: dict[str, np.ndarray]
    failures: dict = field(default_factory=dict)

    def column(self, metric: str) -> np.ndarray:
        """Per-value results of one metric, aligned with ``values``."""
        try:
            return self.metrics[metric]
        except KeyError:
            raise SimulationError(
                f"no metric {metric!r}; available: {', '.join(self.metrics)}"
            ) from None

    def table(self, float_format: str = "{:.4g}") -> str:
        """Render the sweep as an aligned text table."""
        headers = [self.parameter] + list(self.metrics)
        rows = []
        for k, value in enumerate(self.values):
            rows.append(
                [value] + [float(self.metrics[m][k]) for m in self.metrics]
            )
        return render_table(headers, rows, float_format=float_format)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.table()


def sweep(
    parameter: str,
    values,
    metrics: dict[str, Callable[[TransientResult], float | None]],
    tstop: float,
    circuit_factory: Callable[[object], Circuit] | None = None,
    circuit: Circuit | None = None,
    options: SimOptions | None = None,
    option_field: str | None = None,
    scheme: str | None = None,
    threads: int = 2,
    skip_failures: bool = False,
) -> SweepResult:
    """Run the transient study across *values*.

    Exactly one of *circuit_factory* (the value parameterises the circuit)
    or *circuit* + *option_field* (the value patches ``SimOptions``) must
    be given. With *scheme* set, runs WavePipe instead of the sequential
    engine.
    """
    if (circuit_factory is None) == (circuit is None):
        raise SimulationError("provide exactly one of circuit_factory or circuit")
    if circuit is not None and option_field is None:
        raise SimulationError("a fixed circuit needs option_field to sweep")
    if not metrics:
        raise SimulationError("sweep needs at least one metric")

    values = list(values)
    columns = {name: np.full(len(values), np.nan) for name in metrics}
    failures: dict = {}
    base_options = options or SimOptions()

    for k, value in enumerate(values):
        try:
            if circuit_factory is not None:
                target = circuit_factory(value)
                run_options = base_options
            else:
                target = circuit
                run_options = base_options.replace(**{option_field: value})
            if scheme is None:
                result = run_transient(target, tstop, options=run_options)
            else:
                result = run_wavepipe(
                    target, tstop, scheme=scheme, threads=threads,
                    options=run_options,
                )
        except Exception as exc:
            if not skip_failures:
                raise
            failures[value] = f"{type(exc).__name__}: {exc}"
            continue
        for name, metric in metrics.items():
            measured = metric(result)
            if measured is not None:
                columns[name][k] = float(measured)

    return SweepResult(parameter, values, columns, failures)
