"""Small-signal AC analysis.

Linearises the circuit at its DC operating point and solves the complex
system ``(G + j*omega*C) x = u`` over a frequency list, with a unit
excitation applied at one independent source (1 V for voltage sources,
1 A for current sources). Standard SPICE ``.ac`` semantics with the
excitation magnitude fixed at 1 so results read directly as transfer
functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from repro.circuit.circuit import Circuit
from repro.errors import SimulationError
from repro.mna.compiler import CompiledCircuit, compile_circuit
from repro.mna.system import MnaSystem
from repro.solver.dcop import solve_operating_point
from repro.utils.options import SimOptions


@dataclass
class AcResult:
    """Complex transfer functions per unknown over frequency."""

    freqs: np.ndarray
    transfer: dict[str, np.ndarray]

    def magnitude(self, name: str) -> np.ndarray:
        """|H(f)| of the named unknown across the frequency sweep."""
        return np.abs(self._get(name))

    def magnitude_db(self, name: str) -> np.ndarray:
        """Magnitude in dB (floored to avoid log(0))."""
        mag = self.magnitude(name)
        return 20.0 * np.log10(np.maximum(mag, 1e-300))

    def phase_deg(self, name: str) -> np.ndarray:
        """Phase of H(f) in degrees."""
        return np.angle(self._get(name), deg=True)

    def _get(self, name: str) -> np.ndarray:
        if name not in self.transfer:
            available = ", ".join(sorted(self.transfer)[:8])
            raise SimulationError(f"no AC trace {name!r}; available include {available}")
        return self.transfer[name]

    def corner_frequency(self, name: str, drop_db: float = 3.0) -> float | None:
        """First frequency where |H| falls *drop_db* below its low-f value."""
        mag = self.magnitude_db(name)
        target = mag[0] - drop_db
        below = np.nonzero(mag <= target)[0]
        if below.size == 0:
            return None
        i = below[0]
        if i == 0:
            return float(self.freqs[0])
        # log-linear interpolation between the bracketing samples
        f0, f1 = np.log10(self.freqs[i - 1]), np.log10(self.freqs[i])
        m0, m1 = mag[i - 1], mag[i]
        frac = (target - m0) / (m1 - m0)
        return float(10 ** (f0 + frac * (f1 - f0)))


def ac_analysis(
    circuit: Circuit | CompiledCircuit,
    source: str,
    freqs,
    options: SimOptions | None = None,
) -> AcResult:
    """Frequency sweep with unit excitation at *source*."""
    compiled = (
        circuit
        if isinstance(circuit, CompiledCircuit)
        else compile_circuit(circuit, options)
    )
    options = options or compiled.options
    freqs = np.asarray(list(freqs), dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0):
        raise SimulationError("AC analysis needs positive frequencies")

    system = MnaSystem(compiled)
    op = solve_operating_point(system, options)
    out = system.make_buffers()
    system.eval(op.x, 0.0, out)
    zeros_g = np.zeros_like(out.g_vals)
    zeros_c = np.zeros_like(out.c_vals)
    g_matrix = system.pattern.assemble(out.g_vals, zeros_c, 0.0, diag_shift=system.gshunt)
    c_matrix = system.pattern.assemble(zeros_g, out.c_vals, 1.0)

    rhs = _excitation(compiled, source)
    solutions = np.zeros((freqs.size, system.n), dtype=complex)
    for k, f in enumerate(freqs):
        a_matrix = (g_matrix + 2j * np.pi * f * c_matrix).tocsc()
        lu = spla.splu(a_matrix)
        solutions[k] = lu.solve(rhs.astype(complex))

    transfer = {
        name: solutions[:, i] for i, name in enumerate(compiled.unknown_names)
    }
    return AcResult(freqs, transfer)


def _excitation(compiled: CompiledCircuit, source: str) -> np.ndarray:
    rhs = np.zeros(compiled.n)
    vbank = compiled.vsource_bank
    if vbank is not None and source in vbank.names:
        rhs[compiled.branch_current_index(source)] = 1.0
        return rhs
    ibank = compiled.isource_bank
    if ibank is not None and source in ibank.names:
        i = ibank.names.index(source)
        plus, minus = int(ibank.p[i]), int(ibank.m[i])
        if plus < compiled.n:
            rhs[plus] -= 1.0
        if minus < compiled.n:
            rhs[minus] += 1.0
        return rhs
    raise SimulationError(f"{source!r} is not an independent source in this circuit")
