"""Analyses beyond transient: DC sweep, small-signal AC, parameter sweeps."""
