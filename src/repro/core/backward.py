"""Backward waveform pipelining (WavePipe scheme 1).

Sequential LTE-controlled simulation wastes work in two distinct ways that
idle cores can absorb, and both amount to computing *additional time
points backwards in time from the farthest target* — the scheme the
abstract describes as "independent computing tasks that contribute to a
larger future time step by moving backwards in time":

1. **Ratio-bound ramping.** The next step may not exceed
   ``step_ratio_max`` times the last one, so after every breakpoint,
   rejection or sharp feature the step rebuilds geometrically, one solve
   at a time. A backward stage launches the whole geometric chain at
   once: targets ``t + g1, t + g1 + g2, ...`` with ``g1`` the sequential
   step and ``g_{k+1} <= r * g_k``, every task integrating one-step from
   the same accepted history — hence mutually independent. The chain is
   capped by the a-priori LTE-optimal step (scaled by
   ``lte_cap_margin``) when a trustworthy estimate exists.

2. **LTE rejections.** When the controller's proposal overshoots the
   local error budget, sequential simulation pays a full Newton solve,
   discards it, shrinks and retries. A *guard* point at
   ``backward_guard_fraction`` of the main step — backwards in time from
   it — almost always passes when the main point fails, converting a
   dead rejection cycle into accepted progress. Guards are scheduled
   adaptively: an exponentially weighted rejection-rate estimate decides
   whether the second thread guards (rejection-heavy regions) or extends
   the chain (ramp regions).

Every candidate is verified oldest-first with exactly the sequential LTE
test (``h_solve`` = its true one-step integration distance); the first
failure discards the tail as wasted work. Accuracy is therefore identical
to sequential by construction — pipelining changes the schedule, never
the acceptance criteria.
"""

from __future__ import annotations

from repro.core.pipeline import PipelineEngine
from repro.instrument.events import OUTCOME_NEWTON_FAIL
from repro.integration.controller import BREAKPOINT_SNAP
from repro.integration.lte import predicted_max_step
from repro.integration.methods import METHOD_ORDER



def plan_backward_targets(
    h_seq: float,
    room: float,
    chain_cap: float | None,
    ratio_max: float,
    max_targets: int,
    guard_fraction: float = 0.0,
    allow_chain: bool = True,
) -> list[float]:
    """Target distances from the current front for one backward stage.

    Returns an ascending list. The first entry may be a guard point below
    the sequential step (*guard_fraction* > 0 and a thread available);
    chain targets above it grow geometrically and respect both the
    breakpoint window (*room*) and *chain_cap* (the freshest available
    LTE-optimal estimate; None means unbounded within the window).
    """
    first = min(h_seq, room)
    if first >= room * (1.0 - BREAKPOINT_SNAP):
        return [room]  # breakpoint stage: land exactly on it, single task
    targets: list[float] = []
    if guard_fraction > 0 and max_targets >= 2:
        targets.append(first * guard_fraction)
    targets.append(first)
    if not allow_chain:
        return targets

    window = room * (1.0 - BREAKPOINT_SNAP)
    cap = window
    if chain_cap is not None:
        # Never cap below the sequential step itself: the controller
        # already vetted it, and the a-priori estimate can be stale.
        cap = min(cap, max(chain_cap, first))
    gap = first
    distance = first
    while len(targets) < max_targets:
        gap = gap * ratio_max
        distance = distance + gap
        if distance >= window:
            if cap >= window:
                # Error budget reaches the breakpoint: land on it exactly.
                targets.append(room)
            break
        if distance > cap:
            break
        targets.append(distance)
    return targets


class BackwardPipeline(PipelineEngine):
    """Backward-pipelined transient engine."""

    scheme_name = "backward"

    # -- stage ------------------------------------------------------------------

    def run_stage(self) -> None:
        controller = self.controller
        h_seq, _ = controller.propose(self.t)
        room = controller.next_breakpoint(self.t) - self.t

        targets, has_guard = self.plan_targets(h_seq, room, self.threads)
        base = self.history.clone()
        force_be = controller.force_be
        tasks = [self.make_point_task(base, self.t + d, force_be) for d in targets]
        solutions = self.executor.run_stage(tasks)
        self.stats.clock.advance_stage([s.result.work_units for s in solutions])
        for sol in solutions:
            self.charge_solution(sol)

        guard = solutions[0] if has_guard else None
        regular = solutions[1:] if has_guard else solutions
        regular_targets = targets[1:] if has_guard else targets
        gaps = [
            d - (regular_targets[k - 1] if k else 0.0)
            for k, d in enumerate(regular_targets)
        ]
        guard_gap = targets[0] if has_guard else 0.0
        accepted_before = self.stats.accepted_points
        failed = self.verify_ascending(
            regular, guard, gaps, guard_gap, stage_base=self.t
        )
        accepted = self.stats.accepted_points - accepted_before
        if len(regular) > 1:
            # Chain extensions are the regular points beyond the first.
            self.note_chain_outcome(len(regular) - 1, max(0, accepted - 1))
        self.note_stage_outcome(failed)

    def plan_targets(self, h_seq: float, room: float, budget: int) -> tuple[list[float], bool]:
        """Adaptive target plan for one stage with *budget* threads.

        Returns ``(ascending targets, has_guard)`` — when *has_guard* the
        first target is an insurance point below the sequential step.

        Chain targets beyond the sequential step are scheduled only when
        the controller reports it is **ratio-limited** (its LTE-optimal
        recommendation got clamped by the consecutive-step bound, or it
        is rebuilding after a breakpoint) — in LTE-limited regions points
        beyond the sequential step are known-doomed and the spare threads
        are better spent on the rejection guard.
        """
        controller = self.controller
        if budget <= 1 or controller.force_be:
            single = (
                [min(h_seq, room)]
                if h_seq < room * (1 - BREAKPOINT_SNAP)
                else [room]
            )
            return single, False

        guard = self.options.backward_guard_fraction if self.guard_active else 0.0
        # Throttle chain width when recent extensions keep failing: each
        # rejected extension still inflates the stage maximum (its Newton
        # solve ran), so persistent misses cost real pipelined time.
        if self.chain_budget_scale < 0.25:
            reserve = 2 if guard > 0 else 1
            budget = min(budget, reserve + 1)
        chain_cap: float | None = None
        # Chain extension needs (a) a genuine ramp — a streak of
        # ratio-limited accepts, not an isolated LTE blind spot — and
        # (b) headroom: the LTE-optimal step must sit far beyond the
        # ratio cap (infinite right after a restart). When the optimum
        # hovers near the cap (oscillatory waveforms), extensions land
        # on or past the error budget and feed rejection storms.
        headroom_floor = (
            self.options.chain_headroom_min
            * self.options.step_ratio_max
            * h_seq
        )
        headroom = min(controller.h_unclamped, self.conservative_h_opt)
        allow_chain = controller.ratio_streak >= 2 and headroom >= headroom_floor
        if allow_chain:
            margin = self.options.lte_cap_margin
            chain_cap = margin * headroom
            h_opt = predicted_max_step(
                self.options.method,
                METHOD_ORDER[self.options.method],
                self.history,
                self.system.voltage_mask,
                self.options,
            )
            if h_opt is not None:
                chain_cap = min(chain_cap, margin * h_opt)
        targets = plan_backward_targets(
            h_seq,
            room,
            chain_cap,
            self.options.step_ratio_max,
            budget,
            guard_fraction=guard,
            allow_chain=allow_chain,
        )
        has_guard = guard > 0 and len(targets) >= 2 and targets[0] < min(h_seq, room)
        return targets, has_guard

    # -- verification -------------------------------------------------------------

    def verify_ascending(
        self, solutions, guard=None, gaps=None, guard_gap=0.0, stage_base=None
    ) -> bool:
        """Accept points oldest-first; returns True if any candidate failed.

        A failed candidate discards everything beyond it (those solves
        depended on the same base but their acceptance would leave a gap
        in the verified-history chain). The optional *guard* solution is
        pure insurance: it is only consulted — and committed — when the
        first regular candidate fails, converting a sequential
        reject-and-retry cycle into accepted progress.

        *gaps* carries the planner's exact step per candidate so the
        controller sees the same floating-point step values a sequential
        run would (recomputing them from time differences costs an ulp
        and breaks bit-exact threads=1 equivalence).
        """
        controller = self.controller
        accepted: list[tuple[float, object, float]] = []
        failure_verdict = None
        failed = False
        for k, sol in enumerate(solutions):
            gap = gaps[k] if gaps is not None else sol.t - self.t
            if not sol.converged:
                self.stats.newton_failures += 1
                self.recorder.tag_span(
                    getattr(sol, "span_id", None), outcome=OUTCOME_NEWTON_FAIL
                )
                failed = True
                if not accepted:
                    salvaged = self._try_guard(guard, guard_gap)
                    guard = None
                    if not salvaged:
                        controller.on_newton_failure(gap)
                self.waste(solutions[k:])
                break
            if k == 0:
                self.note_solve_cost(sol.result.iterations)
            verdict = self.verdict_for(sol)
            if verdict.estimated:
                self.note_h_optimal(verdict.h_optimal)
            if not verdict.accepted:
                self.stats.rejected_points += 1
                self.record_reject(sol, verdict)
                failed = True
                failure_verdict = verdict
                if not accepted:
                    salvaged = self._try_guard(guard, guard_gap)
                    guard = None
                    if salvaged:
                        controller.h_rec = min(
                            controller.h_rec,
                            max(verdict.h_optimal, controller.min_step),
                        )
                    else:
                        controller.on_reject(gap, verdict)
                self.waste(solutions[k:])
                break
            self.commit_point(sol, gap)
            accepted.append((gap, verdict, sol.t))

        if guard is not None:
            # Insurance not needed: charged to the stage, nothing committed.
            self.stats.extra["guards_unused"] = (
                self.stats.extra.get("guards_unused", 0) + 1
            )
        if accepted:
            gap, verdict, t_last = accepted[-1]
            # Breakpoint detection must use the stage's true base time:
            # recomputing it as t_last - gap can land an ulp below the
            # *previous* breakpoint and misclassify the stage.
            base = stage_base if stage_base is not None else t_last - gap
            hit_bp = t_last >= controller.next_breakpoint(base) * (1.0 - 1e-12)
            controller.on_accept(gap, verdict, hit_bp)
            if hit_bp:
                self.history.mark_era()
            if failure_verdict is not None:
                # A later sibling failed: temper the recommendation with
                # the information its rejection carries.
                retry = max(failure_verdict.h_optimal, controller.min_step)
                controller.h_rec = min(controller.h_rec, retry)
        return failed
