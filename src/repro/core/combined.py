"""Combined backward + forward pipelining (WavePipe scheme 3).

Threads split between the two mechanisms: up to ``threads - 1`` backward
tasks (guard + ramp chain, planned exactly as in
:class:`~repro.core.backward.BackwardPipeline`) plus one forward-
speculative task *beyond* the stage's leading target, integrating against
a predicted history entry for it.

The split is adaptive by construction: in ratio-bound regions the
backward plan uses its full budget and the speculative point extends the
front; in smooth LTE-limited regions the backward plan collapses to a
single target and the scheme behaves like pure forward pipelining. This
is why the paper runs the combined scheme at 3+ threads.
"""

from __future__ import annotations

import numpy as np

from repro.core.backward import BackwardPipeline
from repro.core.forward import HIT_ITERATIONS
from repro.engine.transient import PointSolution, solve_timepoint
from repro.integration.controller import BREAKPOINT_SNAP
from repro.linalg.solve import LinearSolver


class CombinedPipeline(BackwardPipeline):
    """Backward guard/ramp tasks plus one forward-speculative front task."""

    scheme_name = "combined"

    def run_stage(self) -> None:
        controller = self.controller
        h_seq, _ = controller.propose(self.t)
        room = controller.next_breakpoint(self.t) - self.t

        backward_budget = max(1, self.threads - 1)
        targets, has_guard = self.plan_targets(h_seq, room, backward_budget)
        base = self.history.clone()
        force_be = controller.force_be
        tasks = [self.make_point_task(base, self.t + d, force_be) for d in targets]

        chain_targets = targets[1:] if has_guard else targets
        spare_threads = self.threads - len(targets)
        spec_task, spec_gap = self._plan_speculation(
            base, chain_targets, room, force_be, spare_threads
        )
        all_tasks = tasks + ([spec_task] if spec_task else [])
        solutions = self.executor.run_stage(all_tasks)
        backward_solutions = solutions[: len(tasks)]
        speculative = solutions[len(tasks) :]

        backward_costs = [s.result.work_units for s in backward_solutions]
        if speculative:
            # The forward task overlaps the backward stage; only its
            # overshoot past the widest backward task is exposed.
            self.stats.clock.advance_producer_stage(
                max(backward_costs),
                [s.result.work_units for s in speculative],
            )
        else:
            self.stats.clock.advance_stage(backward_costs)
        for sol in solutions:
            self.charge_solution(sol)
        self.stats.speculative_solves += len(speculative)
        self.stats.speculative_work += sum(
            s.result.work_units for s in speculative
        )

        guard = backward_solutions[0] if has_guard else None
        regular = backward_solutions[1:] if has_guard else backward_solutions
        gaps = [
            d - (chain_targets[k - 1] if k else 0.0)
            for k, d in enumerate(chain_targets)
        ]
        guard_gap = targets[0] if has_guard else 0.0
        accepted_before = self.stats.accepted_points
        failed = self.verify_ascending(
            regular, guard, gaps, guard_gap, stage_base=self.t
        )
        accepted = self.stats.accepted_points - accepted_before
        if len(regular) > 1:
            self.note_chain_outcome(len(regular) - 1, max(0, accepted - 1))
        self.note_stage_outcome(failed)
        if failed or not speculative:
            self.waste(speculative, speculative=True)
            return
        self._corrective_commit(speculative[0])

    # -- helpers ------------------------------------------------------------------

    def _plan_speculation(self, base, targets, room, force_be, spare_threads):
        """Build the forward task past the leading backward target.

        Speculation is only worthwhile in the **LTE-limited** regime
        (single-target backward plan): there the predicted next step is
        trustworthy and the prediction distance is one step. Past a ramped
        multi-target chain front the extrapolation is hopeless and the
        chain's own acceptance risk would waste the speculative solve
        almost every stage — measured, not assumed (see the ablation
        bench).
        """
        if spare_threads < 1 or force_be or self.history.era_length < 2:
            return None, 0.0
        if self.controller.ratio_limited or len(targets) > 1:
            return None, 0.0
        if not self.speculation_pays:
            return None, 0.0
        front = targets[-1]
        if front >= room * (1.0 - BREAKPOINT_SNAP):
            return None, 0.0
        spec_gap = min(
            self._predicted_next_step(front),
            room * (1.0 - BREAKPOINT_SNAP) - front,
        )
        if spec_gap <= 0:
            return None, 0.0
        try:
            predicted = self.predicted_timepoint(base, self.t + front)
        except Exception:
            return None, 0.0
        spec_hist = base.clone()
        spec_hist.append(predicted)
        task = self.make_point_task(
            spec_hist,
            self.t + front + spec_gap,
            False,
            iter_cap=self.options.speculative_iter_cap,
        )
        return task, spec_gap

    def _corrective_commit(self, spec: PointSolution) -> None:
        """Re-solve the speculative point against exact history and commit."""
        corrected = self._corrective_solve(spec)
        self.stats.newton_iterations += corrected.result.iterations
        self.stats.work_units += corrected.result.work_units
        self.stats.clock.advance_serial(corrected.result.work_units)
        if not corrected.converged:
            self.stats.newton_failures += 1
            self.note_spec_outcome(False)
            self.record_speculate(
                corrected, False, corrected.result.iterations, False, spec=spec
            )
            self.waste([spec], speculative=True)
            return
        verdict = self.verdict_for(corrected)
        if not verdict.accepted:
            self.stats.rejected_points += 1
            self.record_reject(corrected, verdict)
            self.note_spec_outcome(False)
            self.record_speculate(
                corrected, False, corrected.result.iterations, False, spec=spec
            )
            self.waste([spec], speculative=True)
            gap = corrected.t - self.t
            self.controller.on_reject(gap, verdict)
            return
        self.note_spec_outcome(True)
        hit = corrected.result.iterations <= HIT_ITERATIONS
        self.record_speculate(
            corrected, True, corrected.result.iterations, hit, spec=spec
        )
        if hit:
            self.stats.speculative_hits += 1
        gap = corrected.t - self.t
        self.commit_point(corrected, gap)
        self.controller.on_accept(gap, verdict, False)

    def _corrective_solve(self, speculative: PointSolution) -> PointSolution:
        x0 = speculative.result.x
        if not np.all(np.isfinite(x0)):
            x0 = None
        return solve_timepoint(
            self.system,
            self.history,
            speculative.t,
            self.options,
            force_be=False,
            buffers=self.system.make_buffers(),
            solver=LinearSolver(self.system.unknown_names),
            x_guess=x0,
        )
