"""Forward (predictive) waveform pipelining (WavePipe scheme 2).

While thread 1 ("producer") Newton-solves the regular next point
``t + h``, the remaining threads start solving *future* points
``t + 2h, t + 3h, ...`` whose integration history does not exist yet: each
speculative task integrates against the polynomial predictor's estimate of
the missing preceding point (solution extrapolated, charge and charge
derivative derived from it through the integration formula). Speculative
Newton runs with a bounded iteration budget — on real hardware it can only
overlap the producer.

When the producer's exact solution arrives, each speculative point is
re-solved ("corrective" phase) against the now-exact history, *starting
from its speculative iterate*. If the prediction was good the corrective
phase converges in a Newton step or two — the expensive iterations were
pre-paid in parallel. The final solution satisfies the exact discretised
equations: accuracy and convergence are untouched, exactly as the paper
claims, because speculation only seeds the iterate, never the equations.

Virtual-clock charging: the stage pays ``max(producer, speculative...)``
(they run concurrently) plus the corrective phases serially; discarded
speculation inflates only the concurrent maximum, mirroring real wall
time on an ideal machine.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import PipelineEngine
from repro.engine.transient import PointSolution, solve_timepoint
from repro.instrument.events import OUTCOME_NEWTON_FAIL
from repro.integration.controller import BREAKPOINT_SNAP
from repro.linalg.solve import LinearSolver

#: Corrective phases converging within this many iterations count as
#: speculation hits (diagnostics only).
HIT_ITERATIONS = 2


class ForwardPipeline(PipelineEngine):
    """Forward-pipelined transient engine (speculation depth = threads - 1)."""

    scheme_name = "forward"

    def run_stage(self) -> None:
        controller = self.controller
        h, hits_bp = controller.propose(self.t)
        base = self.history.clone()
        force_be = controller.force_be

        depth = self._speculation_depth(h, hits_bp)
        producer_task = self.make_point_task(base, self.t + h, force_be)

        # Rejection guard: under rejection pressure one thread computes a
        # fallback point below the producer so a failed producer still
        # leaves accepted progress (shared policy with the backward scheme).
        guard_task = None
        guard_gap = 0.0
        if depth > 0 and self.guard_active:
            guard_gap = h * self.options.backward_guard_fraction
            guard_task = self.make_point_task(base, self.t + guard_gap, force_be)
            depth -= 1

        spec_tasks = []
        if depth > 0:
            # Speculate at the step the controller is *expected* to choose
            # after accepting the producer — constant-step speculation
            # forfeits the ramp and loses to sequential on growing steps.
            h_next = self._predicted_next_step(h)
            room = controller.next_breakpoint(self.t) - self.t
            spec_hist = base.clone()
            t_prev = self.t + h
            for _ in range(depth):
                t_i = t_prev + h_next
                if t_i > self.t + room * (1.0 - BREAKPOINT_SNAP):
                    break
                try:
                    predicted = self.predicted_timepoint(spec_hist, t_prev)
                except Exception:
                    break  # prediction impossible (degenerate history)
                spec_hist = spec_hist.clone()
                spec_hist.append(predicted)
                spec_tasks.append(
                    self.make_point_task(
                        spec_hist,
                        t_i,
                        False,
                        iter_cap=self.options.speculative_iter_cap,
                    )
                )
                t_prev = t_i
                h_next = self._predicted_next_step(h_next)

        guard_list = [guard_task] if guard_task else []
        solutions = self.executor.run_stage([producer_task] + guard_list + spec_tasks)
        producer = solutions[0]
        guard = solutions[1] if guard_task else None
        speculative = solutions[1 + len(guard_list) :]
        # Speculation (and the guard) is bounded by the producer on real
        # hardware (threads flip to corrective / idle when the exact
        # history lands); charge only the overshoot past the producer.
        self.stats.clock.advance_producer_stage(
            producer.result.work_units,
            [s.result.work_units for s in solutions[1:]],
        )
        for sol in solutions:
            self.charge_solution(sol)
        self.stats.speculative_solves += len(speculative)
        self.stats.speculative_work += sum(
            s.result.work_units for s in speculative
        )

        # -- producer verification (identical to the sequential engine) ----
        if not producer.converged:
            self.stats.newton_failures += 1
            self.recorder.tag_span(
                getattr(producer, "span_id", None), outcome=OUTCOME_NEWTON_FAIL
            )
            if not self._try_guard(guard, guard_gap):
                controller.on_newton_failure(h)
            self.note_stage_outcome(True)
            self.waste(speculative, speculative=True)
            return
        verdict = self.verdict_for(producer)
        if not verdict.accepted:
            self.stats.rejected_points += 1
            self.record_reject(producer, verdict)
            if self._try_guard(guard, guard_gap):
                controller.h_rec = min(
                    controller.h_rec, max(verdict.h_optimal, controller.min_step)
                )
            else:
                controller.on_reject(h, verdict)
            self.note_stage_outcome(True)
            self.waste(speculative, speculative=True)
            return
        self.note_stage_outcome(False)
        self.note_solve_cost(producer.result.iterations)
        if guard is not None:
            self.stats.extra["guards_unused"] = (
                self.stats.extra.get("guards_unused", 0) + 1
            )
        self.commit_point(producer, h)
        controller.on_accept(h, verdict, hits_bp)
        if hits_bp:
            self.history.mark_era()

        # -- corrective cascade against exact history ------------------------
        for depth, sol in enumerate(speculative, start=1):
            corrected = self._corrective_solve(sol)
            self.stats.newton_iterations += corrected.result.iterations
            self.stats.work_units += corrected.result.work_units
            self.stats.clock.advance_serial(corrected.result.work_units)
            if not corrected.converged:
                self.stats.newton_failures += 1
                self.note_spec_outcome(False)
                self.record_speculate(
                    corrected, False, corrected.result.iterations, False,
                    spec=sol, depth=depth,
                )
                self.waste([sol], speculative=True)
                return
            c_verdict = self.verdict_for(corrected)
            if not c_verdict.accepted:
                self.stats.rejected_points += 1
                self.record_reject(corrected, c_verdict)
                self.note_spec_outcome(False)
                self.record_speculate(
                    corrected, False, corrected.result.iterations, False,
                    spec=sol, depth=depth,
                )
                self.waste([sol], speculative=True)
                gap = corrected.t - self.t
                controller.on_reject(gap, c_verdict)
                return
            self.note_spec_outcome(True)
            hit = corrected.result.iterations <= HIT_ITERATIONS
            self.record_speculate(
                corrected, True, corrected.result.iterations, hit,
                spec=sol, depth=depth,
            )
            if hit:
                self.stats.speculative_hits += 1
            gap = corrected.t - self.t
            self.commit_point(corrected, gap)
            controller.on_accept(gap, c_verdict, False)

    # -- helpers --------------------------------------------------------------

    def _speculation_depth(self, h: float, hits_bp: bool) -> int:
        """How many future points this stage may speculate on."""
        if self.threads < 2 or self.controller.force_be or hits_bp:
            return 0
        if self.history.era_length < 2:
            return 0  # predictor would be constant: speculation is hopeless
        if not self.speculation_pays:
            return 0  # corrective would cost as much as a fresh solve
        # Depth is earned: deep speculation multiplies prediction distance,
        # so poor recent hit rates cap it (the planning loop additionally
        # trims against the breakpoint window).
        return min(self.threads - 1, self.spec_depth_limit)

    def _corrective_solve(self, speculative: PointSolution) -> PointSolution:
        """Re-solve a speculative point against the exact history.

        Uses the speculative iterate as the initial guess; a good
        prediction makes this converge almost immediately.
        """
        x0 = speculative.result.x
        if not np.all(np.isfinite(x0)):
            x0 = None  # speculation exploded: fall back to the predictor
        return solve_timepoint(
            self.system,
            self.history,
            speculative.t,
            self.options,
            force_be=False,
            buffers=self.system.make_buffers(),
            solver=LinearSolver(self.system.unknown_names),
            x_guess=x0,
        )
