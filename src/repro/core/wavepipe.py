"""Public WavePipe API.

:func:`run_wavepipe` runs one pipelined transient;
:func:`compare_with_sequential` additionally runs the sequential baseline
on the same compiled circuit and reports the speedup and waveform accuracy
— the two quantities the paper's evaluation tables are made of.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.core.backward import BackwardPipeline
from repro.core.combined import CombinedPipeline
from repro.core.forward import ForwardPipeline
from repro.core.pipeline import PipelineResult
from repro.engine.transient import TransientResult, run_transient
from repro.errors import SimulationError
from repro.instrument.metrics import metrics_delta
from repro.mna.compiler import CompiledCircuit, compile_circuit
from repro.parallel.executors import StageExecutor, make_executor
from repro.utils.options import SimOptions
from repro.waveform.waveform import Deviation, compare, worst_deviation

#: Scheme name -> engine class.
SCHEMES = {
    "backward": BackwardPipeline,
    "forward": ForwardPipeline,
    "combined": CombinedPipeline,
}


def run_wavepipe(
    circuit: Circuit | CompiledCircuit,
    tstop: float,
    scheme: str = "combined",
    threads: int = 2,
    tstep: float | None = None,
    options: SimOptions | None = None,
    executor: str | StageExecutor = "serial",
    uic: bool = False,
    node_ics: dict[str, float] | None = None,
    instrument=None,
) -> PipelineResult:
    """Pipelined transient simulation of *circuit* to *tstop*.

    Args:
        scheme: "backward", "forward" or "combined".
        threads: simulated thread count (concurrent time points per stage).
        executor: "serial" (deterministic reference), "thread" (real
            thread pool), or a custom :class:`StageExecutor` instance.
            String-named executors are created and closed by this call;
            a provided instance is left open for the caller to reuse.
        instrument: optional :class:`~repro.instrument.Recorder`; the
            run's trace events (stage lanes, Newton solves, speculation
            outcomes) land there and the result's ``metrics`` gains its
            counters.
    """
    if scheme not in SCHEMES:
        raise SimulationError(
            f"unknown WavePipe scheme {scheme!r}; expected one of {sorted(SCHEMES)}"
        )
    if instrument is not None:
        base = options
        if base is None and isinstance(circuit, CompiledCircuit):
            base = circuit.options
        base = base or SimOptions()
        options = base.replace(instrument=instrument)
    # Only close executors this call created: a caller-provided instance
    # (e.g. a shared thread pool, or the oracle's ChaosExecutor) stays
    # open so it can serve further runs.
    owns_executor = isinstance(executor, str)
    if owns_executor:
        executor = make_executor(executor, threads)
    engine = SCHEMES[scheme](
        circuit,
        tstop,
        threads,
        tstep=tstep,
        options=options,
        executor=executor,
        uic=uic,
        node_ics=node_ics,
    )
    try:
        return engine.run()
    finally:
        if owns_executor:
            executor.close()


@dataclass
class SpeedupReport:
    """Sequential-vs-WavePipe comparison on one circuit.

    Attributes:
        speedup: sequential serial work / WavePipe virtual (pipelined)
            work, both including the DC operating point — the table metric.
        efficiency: speedup / threads.
        worst_deviation: largest relative waveform deviation (paper claim:
            indistinguishable from sequential up to integration tolerance).
    """

    sequential: TransientResult
    pipelined: PipelineResult
    scheme: str
    threads: int
    deviations: list[Deviation]

    @property
    def speedup(self) -> float:
        virtual = self.pipelined.stats.virtual_total
        if virtual <= 0:
            return 1.0
        return self.sequential.stats.total_work / virtual

    @property
    def efficiency(self) -> float:
        return self.speedup / max(self.threads, 1)

    @property
    def worst_deviation(self) -> Deviation | None:
        return worst_deviation(self.deviations)

    def metrics_delta(self) -> dict:
        """(sequential, pipelined) pairs of the headline run metrics."""
        return metrics_delta(self.sequential.metrics, self.pipelined.metrics)

    def summary(self) -> str:
        dev = self.worst_deviation
        dev_text = f"{dev.max_relative:.2e} rel ({dev.name})" if dev else "n/a"
        seq_m, pipe_m = self.sequential.metrics, self.pipelined.metrics
        text = (
            f"{self.scheme} x{self.threads}: speedup {self.speedup:.2f} "
            f"(eff {self.efficiency:.2f}), worst deviation {dev_text}, "
            f"seq pts {self.sequential.stats.accepted_points}, "
            f"pipe pts {self.pipelined.stats.accepted_points} "
            f"(+{self.pipelined.stats.wasted_solves} wasted), "
            f"iters/pt {seq_m.iterations_per_point:.2f}->"
            f"{pipe_m.iterations_per_point:.2f}, "
            f"reject {seq_m.reject_rate:.1%}->{pipe_m.reject_rate:.1%}, "
            f"stage util {pipe_m.stage_utilization:.0%}"
        )
        if pipe_m.speculative_work > 0:
            text += (
                f", spec {pipe_m.speculative_hits}/{pipe_m.speculative_solves} hits"
                f" ({pipe_m.speculation_efficiency:.0%} efficient)"
            )
        return text


def compare_with_sequential(
    circuit: Circuit | CompiledCircuit,
    tstop: float,
    scheme: str = "combined",
    threads: int = 2,
    tstep: float | None = None,
    options: SimOptions | None = None,
    executor: str | StageExecutor = "serial",
    signals: list[str] | None = None,
    instrument=None,
) -> SpeedupReport:
    """Run sequential and WavePipe on the same compiled circuit and compare.

    When *instrument* is a :class:`~repro.instrument.Recorder`, both runs
    record into it and the report's :meth:`SpeedupReport.metrics_delta`
    exposes the per-run metric pairs.
    """
    compiled = (
        circuit
        if isinstance(circuit, CompiledCircuit)
        else compile_circuit(circuit, options)
    )
    seq = run_transient(
        compiled, tstop, tstep=tstep, options=options, instrument=instrument
    )
    pipe = run_wavepipe(
        compiled,
        tstop,
        scheme=scheme,
        threads=threads,
        tstep=tstep,
        options=options,
        executor=executor,
        instrument=instrument,
    )
    deviations = compare(seq.waveforms, pipe.waveforms, names=signals)
    return SpeedupReport(
        sequential=seq,
        pipelined=pipe,
        scheme=scheme,
        threads=threads,
        deviations=deviations,
    )
