"""WavePipe pipeline engine: shared machinery of all three schemes.

:class:`PipelineEngine` owns everything a pipelined transient run shares
with the sequential baseline — operating point, accepted history, step
controller, waveform recording — plus the parallel additions: a stage
executor, the virtual clock, and speculative/wasted work accounting.
Scheme subclasses implement :meth:`PipelineEngine.run_stage`, advancing
simulated time by one pipeline stage per call.

Correctness contract (the paper's central claim): a point enters the
history only if (a) its Newton solve converged against already-accepted
history using the exact integration formula, and (b) it passed the same
LTE test the sequential engine applies. Pipelining therefore changes
*which* time points get computed and *when*, never the equations any
accepted point satisfies.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.circuit import Circuit
from repro.engine.transient import (
    PointSolution,
    TransientResult,
    TransientStats,
    _build_waveforms,
    _initial_solution,
    solve_timepoint,
)
from repro.errors import SimulationError, TimestepError
from repro.instrument.events import (
    LTE_REJECT,
    OUTCOME_ACCEPTED,
    OUTCOME_LTE_REJECT,
    OUTCOME_SPECULATIVE_HIT,
    OUTCOME_SPECULATIVE_WASTE,
    RUN,
    SPECULATE,
    STAGE_RUN,
    STEP_ACCEPT,
)
from repro.instrument.metrics import RunMetrics
from repro.instrument.recorder import resolve_recorder
from repro.integration.controller import StepController
from repro.integration.history import Timepoint, TimepointHistory
from repro.integration.lte import lte_verdict
from repro.linalg.solve import LinearSolver
from repro.mna.compiler import CompiledCircuit, compile_circuit
from repro.mna.system import MnaSystem
from repro.parallel.clock import VirtualClock
from repro.parallel.executors import SerialExecutor, StageExecutor
from repro.utils.options import SimOptions

#: Attempt budget multiplier (runaway guard, mirrors the sequential engine).
MAX_STAGES_FACTOR = 400

#: Smoothing factor for the stage rejection-rate EWMA.
REJECT_EWMA_ALPHA = 0.2


@dataclass
class PipelineStats(TransientStats):
    """Sequential stats extended with pipeline accounting.

    ``work_units`` holds the *serial-equivalent* work (every task fully
    charged); the virtual clock's ``virtual_work`` is the pipelined cost.
    """

    clock: VirtualClock = field(default_factory=VirtualClock)
    speculative_solves: int = 0
    speculative_hits: int = 0
    wasted_solves: int = 0
    wasted_work: float = 0.0
    #: Work units spent on speculative solves (forward prediction and the
    #: combined scheme's front task) and the subset of it that was thrown
    #: away — together they price what speculation actually bought.
    speculative_work: float = 0.0
    speculative_wasted_work: float = 0.0

    @property
    def virtual_total(self) -> float:
        """Pipelined cost including the (serial) operating point."""
        return self.clock.virtual_work + self.dc_work_units

    @property
    def serial_total(self) -> float:
        """What one thread would pay for the same set of solves."""
        return self.clock.serial_work + self.dc_work_units

    def self_speedup(self) -> float:
        """Serial-equivalent / virtual: parallelism actually exploited
        (>= true speedup vs the sequential baseline, which does less work)."""
        if self.virtual_total <= 0:
            return 1.0
        return self.serial_total / self.virtual_total


@dataclass
class PipelineResult(TransientResult):
    """Transient result plus scheme identification."""

    scheme: str = ""
    threads: int = 1

    @property
    def pipeline_stats(self) -> PipelineStats:
        return self.stats  # typed convenience


class PipelineEngine:
    """Template for one pipelined transient run (single use)."""

    #: Scheme name reported in results; subclasses override.
    scheme_name = "base"

    def __init__(
        self,
        compiled: CompiledCircuit | Circuit,
        tstop: float,
        threads: int,
        tstep: float | None = None,
        options: SimOptions | None = None,
        executor: StageExecutor | None = None,
        uic: bool = False,
        node_ics: dict[str, float] | None = None,
    ):
        if threads < 1:
            raise SimulationError("WavePipe needs threads >= 1")
        if isinstance(compiled, Circuit):
            compiled = compile_circuit(compiled, options)
        self.compiled = compiled
        self.options = options or compiled.options
        self.tstop = float(tstop)
        self.threads = threads
        self.executor = executor or SerialExecutor()
        self._uic = uic
        self._node_ics = node_ics
        #: Instrumentation sink (NullRecorder unless configured); shared
        #: with the executor so stage tasks land on per-lane trace rows.
        self.recorder = resolve_recorder(self.options.instrument)
        self.executor.recorder = self.recorder

        self.system = MnaSystem(compiled)
        self.stats = PipelineStats(
            clock=VirtualClock(sync_overhead=self.options.sync_overhead)
        )
        self.history = TimepointHistory()
        self.t = 0.0
        self._rec_times: list[float] = []
        self._rec_x: list[np.ndarray] = []
        self._step_sizes: list[float] = []
        h0 = self.options.first_step_fraction * (tstep if tstep else tstop / 50.0)
        self.controller = StepController(
            self.options, self.tstop, h0, compiled.collect_breakpoints(self.tstop)
        )
        self._ran = False
        #: EWMA of stage failure (any rejection / Newton failure); drives
        #: adaptive guard scheduling in every scheme.
        self._reject_ewma = 0.0
        #: EWMA of Newton iterations per main solve; forward speculation
        #: only pays when solves are expensive relative to a corrective.
        self._iters_ewma = 4.0
        #: EWMA of chain-extension success (backward points beyond the
        #: sequential step that passed verification): throttles chain
        #: width when extensions keep getting rejected.
        self._chain_ewma = 0.5
        #: EWMA of speculation success (corrective converged + accepted):
        #: throttles forward depth when predictions keep missing.
        self._spec_ewma = 0.5
        #: Last few LTE-optimal step estimates. The *minimum* over this
        #: window is the conservative headroom estimate used to gate and
        #: cap backward chains: a single spiked estimate (curvature
        #: inflection, where the divided difference passes through zero)
        #: cannot green-light an extension on its own.
        self._recent_h_opt: deque[float] = deque(maxlen=3)

    def note_stage_outcome(self, failed: bool) -> None:
        """Update the rejection-rate estimate after a stage."""
        self._reject_ewma = (1 - REJECT_EWMA_ALPHA) * self._reject_ewma + (
            REJECT_EWMA_ALPHA if failed else 0.0
        )

    def note_solve_cost(self, iterations: int) -> None:
        """Update the average-solve-cost estimate (main solves only)."""
        self._iters_ewma = (
            1 - REJECT_EWMA_ALPHA
        ) * self._iters_ewma + REJECT_EWMA_ALPHA * iterations

    def note_h_optimal(self, h_optimal: float) -> None:
        """Record an LTE-optimal step estimate for the headroom window."""
        self._recent_h_opt.append(h_optimal)

    @property
    def conservative_h_opt(self) -> float:
        """Pessimistic LTE-optimal step: minimum over the recent window."""
        if not self._recent_h_opt:
            return float("inf")
        return min(self._recent_h_opt)

    @property
    def guard_active(self) -> bool:
        """True when recent rejection pressure justifies a guard task."""
        return (
            self.options.backward_guard_fraction > 0
            and self._reject_ewma >= self.options.reject_ewma_threshold
        )

    @property
    def speculation_pays(self) -> bool:
        """True when solves cost enough for speculation to save work."""
        return self._iters_ewma >= self.options.spec_min_iters

    def note_chain_outcome(self, scheduled: int, accepted: int) -> None:
        """Update the chain-extension success estimate (per extra point)."""
        for k in range(scheduled):
            hit = 1.0 if k < accepted else 0.0
            self._chain_ewma = (
                1 - REJECT_EWMA_ALPHA
            ) * self._chain_ewma + REJECT_EWMA_ALPHA * hit
        if self.recorder.enabled and scheduled:
            self.recorder.count("backward.chain_scheduled", scheduled)
            self.recorder.count("backward.chain_accepted", accepted)

    def note_spec_outcome(self, success: bool) -> None:
        """Update the speculation success estimate."""
        self._spec_ewma = (
            1 - REJECT_EWMA_ALPHA
        ) * self._spec_ewma + REJECT_EWMA_ALPHA * (1.0 if success else 0.0)
        if self.recorder.enabled:
            self.recorder.count(
                "speculate.successes" if success else "speculate.misses"
            )

    @property
    def chain_budget_scale(self) -> float:
        """Fraction of the thread budget the chain has been earning."""
        return self._chain_ewma

    @property
    def spec_depth_limit(self) -> int:
        """Speculation depth the recent hit rate justifies (at least 1)."""
        if self._spec_ewma >= 0.6:
            return 8  # effectively unlimited; thread count binds first
        if self._spec_ewma >= 0.3:
            return 2
        return 1

    # -- scheme hook ------------------------------------------------------------

    def run_stage(self) -> None:
        """Advance the run by one pipeline stage (subclass responsibility).

        Must make progress or adjust the controller so a later stage can;
        the attempt budget catches livelock.
        """
        raise NotImplementedError

    # -- shared services --------------------------------------------------------

    def make_point_task(
        self,
        history: TimepointHistory,
        t_new: float,
        force_be: bool,
        x_guess: np.ndarray | None = None,
        iter_cap: int | None = None,
    ):
        """Closure solving one time point with task-private scratch state."""
        system, options = self.system, self.options

        def task() -> PointSolution:
            return solve_timepoint(
                system,
                history,
                t_new,
                options,
                force_be,
                buffers=system.make_buffers(fast_path=options.jacobian_reuse),
                solver=LinearSolver(system.unknown_names),
                x_guess=x_guess,
                iter_cap=iter_cap,
            )

        return task

    def verdict_for(self, solution: PointSolution):
        """LTE test against the live history, honouring the solve step."""
        return lte_verdict(
            solution.scheme.method_used,
            solution.scheme.order,
            self.history,
            solution.t,
            solution.result.x,
            self.system.voltage_mask,
            self.options,
            h_solve=solution.scheme.h,
        )

    def commit_point(self, solution: PointSolution, h_taken: float) -> None:
        """Append an accepted point and record its trace sample."""
        self.history.append(solution.to_timepoint())
        self.t = solution.t
        self.stats.accepted_points += 1
        self._rec_times.append(self.t)
        self._rec_x.append(solution.result.x)
        self._step_sizes.append(h_taken)
        if self.recorder.enabled:
            self.recorder.count("points.accepted")
            self.recorder.observe("step.h_accepted", h_taken)
            self.recorder.event(STEP_ACCEPT, t_sim=self.t, h=h_taken)
            self.recorder.tag_span(
                getattr(solution, "span_id", None), outcome=OUTCOME_ACCEPTED
            )

    def record_reject(self, solution: PointSolution, verdict) -> None:
        """Emit the LTE-rejection event/counter for a failed candidate."""
        if self.recorder.enabled:
            self.recorder.count("lte.rejects")
            self.recorder.event(
                LTE_REJECT,
                t_sim=solution.t,
                h=solution.scheme.h,
                h_optimal=verdict.h_optimal,
            )
            self.recorder.tag_span(
                getattr(solution, "span_id", None), outcome=OUTCOME_LTE_REJECT
            )

    def record_speculate(self, solution: PointSolution, success: bool,
                         iterations: int, hit: bool, spec=None,
                         depth: int = 1) -> None:
        """Emit the corrective-phase outcome of one speculative point.

        *spec* is the original speculative solution (the corrective
        *solution* was solved inline and has no task span): its span gets
        the hit/accepted tag and its pre-paid work lands on the
        speculation-economics counters. *depth* is the point's position in
        the speculative cascade (1 = nearest to the committed frontier) —
        ``repro explain`` builds its depth-vs-hit-rate curve from it.
        """
        rec = self.recorder
        if not rec.enabled:
            return
        rec.event(
            SPECULATE,
            t_sim=solution.t,
            success=success,
            corrective_iterations=iterations,
            hit=hit,
            depth=depth,
        )
        if spec is None:
            return
        if success:
            rec.count("speculate.useful_work", spec.result.work_units)
            rec.tag_span(
                getattr(spec, "span_id", None),
                outcome=OUTCOME_SPECULATIVE_HIT if hit else OUTCOME_ACCEPTED,
            )

    def charge_solution(self, solution: PointSolution) -> None:
        """Book per-solution Newton statistics (not clock time)."""
        self.stats.newton_iterations += solution.result.iterations
        self.stats.work_units += solution.result.work_units
        self.stats.charge_lu(solution.result)

    def waste(self, solutions, speculative: bool = False) -> None:
        """Mark discarded solutions (their cost is already on the clock).

        *speculative* routes the cost onto the speculation-economics
        ledger as well (forward/combined predictions that missed). Spans
        are tagged ``speculative_waste`` without overwriting a specific
        failure cause recorded by the verify phase.
        """
        rec = self.recorder
        for sol in solutions:
            self.stats.wasted_solves += 1
            self.stats.wasted_work += sol.result.work_units
            if speculative:
                self.stats.speculative_wasted_work += sol.result.work_units
            if rec.enabled:
                if speculative:
                    rec.count("speculate.wasted_work", sol.result.work_units)
                rec.tag_span(
                    getattr(sol, "span_id", None),
                    outcome=OUTCOME_SPECULATIVE_WASTE,
                    overwrite=False,
                )

    def _try_guard(self, guard, guard_gap: float = 0.0) -> bool:
        """Commit a guard (insurance) point if it converged and passes LTE.

        Shared by every scheme: when the main candidate of a stage fails,
        the guard converts the otherwise-wasted stage into accepted
        progress. Returns True when the guard was committed.
        """
        if guard is None or not guard.converged:
            return False
        verdict = self.verdict_for(guard)
        if not verdict.accepted:
            return False
        gap = guard_gap if guard_gap > 0.0 else guard.t - self.t
        self.commit_point(guard, gap)
        self.controller.on_accept(gap, verdict, False)
        self.stats.extra["guard_salvages"] = (
            self.stats.extra.get("guard_salvages", 0) + 1
        )
        if self.recorder.enabled:
            self.recorder.count("guard.salvages")
        return True

    def _predicted_next_step(self, h_current: float) -> float:
        """Best guess at the step the controller will pick after the next
        acceptance: the unclamped LTE-optimal estimate bounded by the ratio
        cap, mirroring :meth:`StepController.on_accept` (ratio cap on faith
        when no estimate exists, e.g. right after a restart)."""
        cap = self.options.step_ratio_max * h_current
        h_unclamped = self.controller.h_unclamped
        guess = cap if not np.isfinite(h_unclamped) else min(h_unclamped, cap)
        return max(guess, 0.25 * h_current)

    def predicted_timepoint(self, history: TimepointHistory, t_new: float) -> Timepoint:
        """Speculative history entry at *t_new* from the polynomial predictor.

        Charges one evaluation's worth of work to the caller's accounting
        via the returned object's use; the charge evaluation itself is
        cheap relative to a Newton solve and is folded into the
        speculative task's cost by the scheme.
        """
        x_hat = history.predict(t_new, self.options.predictor_order)
        out = self.system.make_buffers()
        self.system.eval(x_hat, t_new, out)
        q_hat = self.system.charge(out)
        from repro.integration.methods import scheme_coefficients

        scheme = scheme_coefficients(self.options.method, history, t_new)
        return Timepoint(t_new, x_hat, q_hat, scheme.qdot(q_hat))

    # -- driver -------------------------------------------------------------------

    def run(self) -> PipelineResult:
        """Execute the full transient and package the result."""
        if self._ran:
            raise SimulationError("PipelineEngine instances are single-use")
        self._ran = True
        rec = self.recorder
        tracing = rec.enabled
        started = time.perf_counter()
        run_sid = (
            rec.begin_span(RUN, kind=self.scheme_name, threads=self.threads)
            if tracing
            else 0
        )

        x0, q0 = _initial_solution(
            self.system, self.options, self._uic, self._node_ics, self.stats
        )
        self.history.append(Timepoint(0.0, x0, q0, np.zeros(self.system.n)))
        self._rec_times.append(0.0)
        self._rec_x.append(x0)

        stages = 0
        max_stages = MAX_STAGES_FACTOR * max(
            int(self.tstop / self.controller.h_rec), 1000
        )
        while self.t < self.tstop * (1.0 - 1e-12):
            stages += 1
            if stages > max_stages:
                raise TimestepError(
                    f"stage budget exhausted at t={self.t:.3e}s "
                    f"(accepted {self.stats.accepted_points})"
                )
            if tracing:
                self._traced_stage(stages - 1)
            else:
                self.run_stage()

        self.stats.tran_seconds = (
            time.perf_counter() - started - self.stats.dcop_seconds
        )
        if tracing:
            rec.end_span(
                run_sid,
                cost=self.stats.virtual_total,
                accepted=self.stats.accepted_points,
            )
        metrics = RunMetrics.from_stats(
            self.stats,
            scheme=self.scheme_name,
            threads=self.threads,
            recorder=rec if tracing else None,
        )
        return PipelineResult(
            waveforms=_build_waveforms(self.system, self._rec_times, self._rec_x),
            stats=self.stats,
            times=np.array(self._rec_times),
            step_sizes=np.array(self._step_sizes),
            options=self.options,
            metrics=metrics,
            scheme=self.scheme_name,
            threads=self.threads,
        )

    def _traced_stage(self, index: int) -> None:
        """Run one stage under the recorder as a ``stage_run`` span.

        The span is the parent of this stage's task spans: pool threads
        cannot see the scheduler thread's span stack, so the executor
        carries the id explicitly for the duration of the stage. It is
        closed in the ``finally`` so a stage that raises (step underflow,
        chaos faults) still leaves a balanced tree for diagnosis.
        """
        rec = self.recorder
        clock = self.stats.clock
        accepted_before = self.stats.accepted_points
        virtual_before = clock.virtual_work
        widths_before = len(clock._stage_widths)
        sid = rec.begin_span(STAGE_RUN, stage=index)
        self.executor.parent_span = sid
        try:
            self.run_stage()
        finally:
            self.executor.parent_span = None
            width = (
                clock._stage_widths[-1]
                if len(clock._stage_widths) > widths_before
                else 1
            )
            rec.count("pipeline.stages")
            rec.observe("pipeline.stage_width", width)
            rec.end_span(
                sid,
                cost=clock.virtual_work - virtual_before,
                t_sim=self.t,
                width=width,
                accepted=self.stats.accepted_points - accepted_before,
                virtual_cost=clock.virtual_work - virtual_before,
            )
