"""WavePipe: the paper's contribution — parallel time-stepping schemes."""
