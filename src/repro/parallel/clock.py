"""Virtual clock: the primary speedup metric of this reproduction.

The paper measured wall-clock speedups of a pthreads engine on a real
multi-core machine. This host has one CPU, and CPython's GIL serialises
pure-Python threads, so wall-clock cannot exhibit multi-core scaling here
regardless of the algorithm (see DESIGN.md, "Substitutions"). Instead we
charge every task its *measured* cost and replay the schedule an ideal
shared-memory machine would execute:

* a **stage** of independent tasks (backward pipelining) costs the maximum
  of its tasks' costs plus a configurable synchronisation overhead;
* **speculative** work (forward pipelining) is free while it overlaps its
  producer and charged serially beyond that;
* **wasted** work (discarded points, failed speculation) still occupies
  the thread that ran it, so it inflates stage maxima exactly as it would
  inflate real wall time.

Costs are work units from the instrumented Newton solver (device
evaluations + factorisation effort per iteration) — deterministic, unlike
`perf_counter`, so speedup tables are reproducible. The clock also sums
the plain serial total so efficiency (= serial/virtual/threads) can be
reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class VirtualClock:
    """Accumulates pipelined (virtual) and serial-equivalent work."""

    sync_overhead: float = 0.0
    virtual_work: float = 0.0
    serial_work: float = 0.0
    stages: int = 0
    peak_width: int = 1
    _stage_widths: list[int] = field(default_factory=list)

    def advance_stage(self, costs: list[float]) -> float:
        """Charge one stage of concurrent task costs; returns its width cost."""
        if not costs:
            return 0.0
        stage_cost = max(costs) + self.sync_overhead
        self.virtual_work += stage_cost
        self.serial_work += sum(costs)
        self.stages += 1
        self._stage_widths.append(len(costs))
        self.peak_width = max(self.peak_width, len(costs))
        return stage_cost

    def advance_serial(self, cost: float) -> None:
        """Charge work that runs with no concurrency (DC op, corrective
        Newton phases, single-task stages)."""
        self.virtual_work += cost
        self.serial_work += cost

    def advance_producer_stage(
        self, producer_cost: float, overlapped_costs: list[float]
    ) -> float:
        """Charge a producer with several tasks hidden behind it.

        Each overlapped task runs on its own thread concurrently with the
        producer (and with each other), so only the worst overshoot past
        the producer is exposed. Returns the exposed amount.
        """
        exposed = max(
            (max(0.0, c - producer_cost) for c in overlapped_costs), default=0.0
        )
        self.virtual_work += producer_cost + exposed + self.sync_overhead
        self.serial_work += producer_cost + sum(overlapped_costs)
        self.stages += 1
        width = 1 + len(overlapped_costs)
        self._stage_widths.append(width)
        self.peak_width = max(self.peak_width, width)
        return exposed

    def advance_overlapped(self, producer_cost: float, overlapped_cost: float) -> float:
        """Charge a producer with one task hidden behind it.

        The overlapped task is free up to the producer's cost; any excess
        is exposed. Returns the exposed amount.
        """
        exposed = max(0.0, overlapped_cost - producer_cost)
        self.virtual_work += producer_cost + exposed + self.sync_overhead
        self.serial_work += producer_cost + overlapped_cost
        self.stages += 1
        self._stage_widths.append(2)
        self.peak_width = max(self.peak_width, 2)
        return exposed

    @property
    def mean_width(self) -> float:
        """Average number of concurrent tasks per stage."""
        if not self._stage_widths:
            return 1.0
        return sum(self._stage_widths) / len(self._stage_widths)

    def speedup_against(self, serial_reference: float) -> float:
        """Speedup of this schedule vs an externally measured serial cost."""
        if self.virtual_work <= 0:
            return 1.0
        return serial_reference / self.virtual_work
