"""Stage executors: how a set of independent tasks actually runs.

WavePipe's schedulers emit *stages* — lists of closures with no mutual
data dependencies. Two interchangeable runtimes execute them:

* :class:`SerialExecutor` runs tasks in order on the calling thread. With
  the virtual clock this is the deterministic reference runtime (and, on
  a 1-CPU GIL-bound host, also the fastest in wall time).
* :class:`ThreadExecutor` runs tasks on a real thread pool. Results are
  bit-identical to the serial runtime because tasks are stateless with
  respect to shared objects (each allocates its own buffers and solver);
  this runtime demonstrates that the decomposition is genuinely
  concurrent and would scale on a GIL-free multi-core interpreter.

Both return results in task order regardless of completion order.

Observability: when a :class:`~repro.instrument.Recorder` is attached
(``executor.recorder``, set by the pipeline engine), every task emits a
``stage_task`` event on its lane — lane *k+1* is task slot *k* of a
stage — which is what the Chrome-trace exporter turns into per-thread
occupancy rows.
"""

from __future__ import annotations

import abc
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Callable, Sequence

from repro.errors import SimulationError
from repro.instrument.events import STAGE_TASK


class StageExecutor(abc.ABC):
    """Runs one stage of independent tasks and returns ordered results."""

    #: Optional Recorder; the owning pipeline engine attaches its own.
    recorder = None

    #: Span id of the currently-running stage (set by the engine around
    #: each ``run_stage`` call); task spans attach to it explicitly since
    #: pool threads don't share the scheduler thread's span stack.
    parent_span = None

    #: Monotonic stage counter (tags stage_task events).
    _stage_index = 0

    @abc.abstractmethod
    def run_stage(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        """Execute every task; results positionally match *tasks*."""

    def close(self) -> None:
        """Release any pooled resources (no-op by default)."""

    def __enter__(self) -> "StageExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- instrumentation ---------------------------------------------------------

    def _instrumented(self, tasks: Sequence[Callable[[], object]]):
        """Wrap *tasks* so each records a lane-tagged ``stage_task`` span.

        Returns *tasks* untouched when no enabled recorder is attached —
        the uninstrumented path adds zero per-task overhead. The span id
        is stashed on the returned solution (``result.span_id``) so the
        scheduler's verify/commit phase can tag the outcome after the
        fact; Newton solves inside the task auto-nest under it.
        """
        rec = self.recorder
        if rec is None or not rec.enabled:
            return tasks
        stage = self._stage_index
        self._stage_index += 1
        parent = self.parent_span

        def wrap(task, lane):
            def run():
                sid = rec.begin_span(STAGE_TASK, lane=lane + 1, parent=parent)
                result = None
                try:
                    result = task()
                finally:
                    attrs = {"stage": stage}
                    # Solutions carry their target time and Newton cost;
                    # stay duck-typed so arbitrary closures keep working.
                    t_sim = getattr(result, "t", None)
                    inner = getattr(result, "result", None)
                    work = getattr(inner, "work_units", None)
                    if work is not None:
                        attrs["work_units"] = work
                        attrs["iterations"] = getattr(inner, "iterations", None)
                    rec.end_span(
                        sid,
                        cost=work if work is not None else 0.0,
                        t_sim=t_sim if isinstance(t_sim, float) else None,
                        **attrs,
                    )
                    try:
                        result.span_id = sid
                    except AttributeError:
                        pass
                return result

            return run

        return [wrap(task, lane) for lane, task in enumerate(tasks)]


class SerialExecutor(StageExecutor):
    """Deterministic in-order execution on the calling thread."""

    def run_stage(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        return [task() for task in self._instrumented(tasks)]


class ThreadExecutor(StageExecutor):
    """Real concurrent execution on a shared thread pool."""

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise SimulationError(
                f"ThreadExecutor needs max_workers >= 1, got {max_workers}"
            )
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._closed = False

    def run_stage(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        if self._closed:
            # fail loudly instead of letting the dead pool raise an opaque
            # RuntimeError (or hang) from submit()
            raise SimulationError(
                "ThreadExecutor is closed; create a new executor to run more stages"
            )
        futures = [self._pool.submit(task) for task in self._instrumented(tasks)]
        # Let every task finish before surfacing anything: no futures are
        # abandoned mid-flight, and the *first task in stage order* wins
        # (deterministic, matching what SerialExecutor would raise) with
        # its original traceback rather than whichever future the
        # concurrent.futures bookkeeping happened to surface first.
        wait(futures)
        for future in futures:
            error = future.exception()
            if error is not None:
                raise error
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down; safe to call any number of times."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)


def make_executor(kind: str, threads: int) -> StageExecutor:
    """Factory: ``"serial"`` or ``"thread"``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(threads)
    raise SimulationError(f"unknown executor kind {kind!r} (serial|thread)")
