"""Stage executors: how a set of independent tasks actually runs.

WavePipe's schedulers emit *stages* — lists of closures with no mutual
data dependencies. Two interchangeable runtimes execute them:

* :class:`SerialExecutor` runs tasks in order on the calling thread. With
  the virtual clock this is the deterministic reference runtime (and, on
  a 1-CPU GIL-bound host, also the fastest in wall time).
* :class:`ThreadExecutor` runs tasks on a real thread pool. Results are
  bit-identical to the serial runtime because tasks are stateless with
  respect to shared objects (each allocates its own buffers and solver);
  this runtime demonstrates that the decomposition is genuinely
  concurrent and would scale on a GIL-free multi-core interpreter.

Both return results in task order regardless of completion order.
"""

from __future__ import annotations

import abc
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.errors import SimulationError


class StageExecutor(abc.ABC):
    """Runs one stage of independent tasks and returns ordered results."""

    @abc.abstractmethod
    def run_stage(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        """Execute every task; results positionally match *tasks*."""

    def close(self) -> None:
        """Release any pooled resources (no-op by default)."""

    def __enter__(self) -> "StageExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(StageExecutor):
    """Deterministic in-order execution on the calling thread."""

    def run_stage(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        return [task() for task in tasks]


class ThreadExecutor(StageExecutor):
    """Real concurrent execution on a shared thread pool."""

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise SimulationError("ThreadExecutor needs max_workers >= 1")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def run_stage(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        futures = [self._pool.submit(task) for task in tasks]
        return [f.result() for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(kind: str, threads: int) -> StageExecutor:
    """Factory: ``"serial"`` or ``"thread"``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(threads)
    raise SimulationError(f"unknown executor kind {kind!r} (serial|thread)")
