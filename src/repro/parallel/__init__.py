"""Parallel runtime: stage executors and the virtual clock."""
