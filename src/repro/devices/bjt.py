"""Ebers–Moll BJT bank (transport formulation with Early effect).

Currents (NPN, sign-flipped for PNP like the MOSFET bank):

    i_f  = IS*(exp(vbe/VT) - 1)         forward transport component
    i_r  = IS*(exp(vbc/VT) - 1)         reverse transport component
    I_C  = (i_f - i_r)*(1 - vbc/VAF) - i_r/BR
    I_B  = i_f/BF + i_r/BR
    I_E  = -(I_C + I_B)

Charge model: constant junction capacitances ``cje`` (B-E) and ``cjc``
(B-C) plus forward diffusion charge ``tf * i_f`` (voltage-dependent, so the
B-E C-stream entry is nonlinear). gmin is added across both junctions.

Newton limiting reuses the diode ``pnjlim`` on both junction voltages.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import (
    VT,
    DeviceBank,
    EvalOutputs,
    safe_exp,
    stamp_values,
)
from repro.devices.diode import pnjlim
from repro.mna.pattern import PatternBuilder


class BjtBank(DeviceBank):
    """All bipolar transistors (both polarities)."""

    work_weight = 2.0
    supports_ensemble = True
    ensemble_params = (
        "sign",
        "isat",
        "bf",
        "br",
        "inv_vaf",
        "cje",
        "cjc",
        "tf",
        "vt",
        "vcrit",
    )

    def __init__(self, names, c_idx, b_idx, e_idx, models, areas, gmin):
        super().__init__(names)
        self.c = np.asarray(c_idx, dtype=np.int64)
        self.b = np.asarray(b_idx, dtype=np.int64)
        self.e = np.asarray(e_idx, dtype=np.int64)
        areas = np.asarray(areas, dtype=float)
        self.sign = np.array([1.0 if m.polarity == "npn" else -1.0 for m in models])
        self.isat = np.array([m.is_ for m in models]) * areas
        self.bf = np.array([m.bf for m in models])
        self.br = np.array([m.br for m in models])
        self.inv_vaf = np.array(
            [0.0 if np.isinf(m.vaf) else 1.0 / m.vaf for m in models]
        )
        self.cje = np.array([m.cje for m in models]) * areas
        self.cjc = np.array([m.cjc for m in models]) * areas
        self.tf = np.array([m.tf for m in models])
        self.gmin = gmin
        self.vt = np.full(self.count, VT)
        self.vcrit = self.vt * np.log(self.vt / (np.sqrt(2.0) * self.isat))
        self._g_slots = None
        self._c_slots = None

    def register(self, builder: PatternBuilder) -> None:
        c, b, e = self.c, self.b, self.e
        # Dense 3x3 coupling block per device (rows/cols over c, b, e).
        rows = np.stack([c, c, c, b, b, b, e, e, e], axis=1).ravel()
        cols = np.stack([c, b, e, c, b, e, c, b, e], axis=1).ravel()
        self._g_slots = builder.add_g_entries(rows, cols)
        self._c_slots = builder.add_c_entries(rows, cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        p = self.sign
        vbe = p * (x_full[self.b] - x_full[self.e])
        vbc = p * (x_full[self.b] - x_full[self.c])

        ef, def_ = safe_exp(vbe / self.vt)
        er, der = safe_exp(vbc / self.vt)
        i_f = self.isat * (ef - 1.0)
        i_r = self.isat * (er - 1.0)
        gf = self.isat * def_ / self.vt  # d i_f / d vbe
        gr = self.isat * der / self.vt  # d i_r / d vbc

        early = 1.0 - vbc * self.inv_vaf
        ic = (i_f - i_r) * early - i_r / self.br + self.gmin * (vbe - vbc)
        ib = i_f / self.bf + i_r / self.br + self.gmin * vbe

        # Partials in (vbe, vbc) space.
        dic_dvbe = gf * early + self.gmin
        dic_dvbc = -gr * early - (i_f - i_r) * self.inv_vaf - gr / self.br - self.gmin
        dib_dvbe = gf / self.bf + self.gmin
        dib_dvbc = gr / self.br

        # Real node currents: I_C into collector, I_B into base, I_E = -(I_C+I_B).
        i_c_real = p * ic
        i_b_real = p * ib
        np.add.at(out.f, self.c, i_c_real)
        np.add.at(out.f, self.b, i_b_real)
        np.add.at(out.f, self.e, -(i_c_real + i_b_real))

        # Chain rule: vbe = p*(Vb - Ve), vbc = p*(Vb - Vc); p cancels in G.
        g_cc = gr * early + (i_f - i_r) * self.inv_vaf + gr / self.br + self.gmin
        g_cb = dic_dvbe + dic_dvbc
        g_ce = -dic_dvbe
        g_bc = -dib_dvbc
        g_bb = dib_dvbe + dib_dvbc
        g_be = -dib_dvbe
        g_ec = -(g_cc + g_bc)
        g_eb = -(g_cb + g_bb)
        g_ee = -(g_ce + g_be)
        out.g_vals[self._g_slots.slice] = stamp_values(
            g_cc, g_cb, g_ce, g_bc, g_bb, g_be, g_ec, g_eb, g_ee, sims=self.sims
        )

        # Charges: q_be on B-E, q_bc on B-C (device space), real sign p.
        q_be = self.cje * vbe + self.tf * i_f
        q_bc = self.cjc * vbc
        c_be = self.cje + self.tf * gf
        c_bc = self.cjc
        np.add.at(out.q, self.b, p * (q_be + q_bc))
        np.add.at(out.q, self.e, -p * q_be)
        np.add.at(out.q, self.c, -p * q_bc)
        zeros = np.zeros(self.count)
        # C-stream over the same 3x3 (c, b, e) block:
        # dQc/d(c,b,e); dQb/...; dQe/...
        out.c_vals[self._c_slots.slice] = stamp_values(
            c_bc,  # dQc/dVc = -p*cjc*d vbc/dVc = -p*cjc*(-p) = cjc
            -c_bc,  # dQc/dVb
            zeros,  # dQc/dVe
            -c_bc,  # dQb/dVc
            c_be + c_bc,  # dQb/dVb
            -c_be,  # dQb/dVe
            zeros,  # dQe/dVc
            -c_be,  # dQe/dVb
            c_be,  # dQe/dVe
            sims=self.sims,
        )

    def limit(
        self,
        x_proposed: np.ndarray,
        x_previous: np.ndarray,
        changed_cols: np.ndarray | None = None,
    ) -> bool:
        changed_any = False
        for plus, minus in ((self.b, self.e), (self.b, self.c)):
            p = self.sign
            vnew = p * (x_proposed[plus] - x_proposed[minus])
            vold = p * (x_previous[plus] - x_previous[minus])
            vlim, changed = pnjlim(vnew, vold, self.vt, self.vcrit)
            if changed.any():
                changed_any = True
                if changed_cols is not None and changed.ndim == 2:
                    changed_cols |= changed.any(axis=0)
                delta = p * (vlim - vnew)
                trash = x_proposed.shape[0] - 1
                for pos in zip(*np.nonzero(changed)):
                    i = pos[0]
                    if plus[i] != trash:
                        x_proposed[(plus[i], *pos[1:])] += delta[pos]
                    else:
                        x_proposed[(minus[i], *pos[1:])] -= delta[pos]
        return changed_any
