"""Linear passive device banks: resistors, capacitors, inductors.

Stamp conventions (MNA, residual form ``f(x) + dq(x)/dt + s(t) = 0``):

* Resistor between nodes a, b: current leaving a is ``g*(va - vb)``;
  contributes to ``f`` and the G-stream Jacobian.
* Capacitor: charge ``C*(va - vb)`` accumulated into ``q`` with the same
  4-entry pattern in the C-stream.
* Inductor: adds a branch-current unknown ``j``. KCL rows get ``+-x[j]``;
  the branch row enforces ``va - vb - L*dj/dt = 0`` via ``f[j] = va - vb``
  and ``q[j] = -L * x[j]``.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import (
    DeviceBank,
    EvalOutputs,
    scatter_pair,
    stamp_values,
    two_terminal_conductance_pattern,
    two_terminal_values,
)
from repro.mna.pattern import PatternBuilder


class ResistorBank(DeviceBank):
    """All linear resistors, parameterised by conductance."""

    work_weight = 0.25
    supports_ensemble = True
    ensemble_params = ("g",)

    def __init__(self, names, a_idx, b_idx, resistances):
        super().__init__(names)
        self.a = np.asarray(a_idx, dtype=np.int64)
        self.b = np.asarray(b_idx, dtype=np.int64)
        self.g = 1.0 / np.asarray(resistances, dtype=float)
        self._slots = None

    def register(self, builder: PatternBuilder) -> None:
        rows, cols = two_terminal_conductance_pattern(self.a, self.b)
        self._slots = builder.add_g_entries(rows, cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        v = x_full[self.a] - x_full[self.b]
        current = self.g * v
        scatter_pair(out.f, self.a, self.b, current)
        if not out.static:
            out.g_vals[self._slots.slice] = two_terminal_values(self.g)

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        g_vals[self._slots.slice] = two_terminal_values(self.g)
        return True


class CapacitorBank(DeviceBank):
    """All linear capacitors; contributes charge, not resistive current."""

    work_weight = 0.25
    supports_ensemble = True
    ensemble_params = ("c",)

    def __init__(self, names, a_idx, b_idx, capacitances):
        super().__init__(names)
        self.a = np.asarray(a_idx, dtype=np.int64)
        self.b = np.asarray(b_idx, dtype=np.int64)
        self.c = np.asarray(capacitances, dtype=float)
        self._slots = None

    def register(self, builder: PatternBuilder) -> None:
        rows, cols = two_terminal_conductance_pattern(self.a, self.b)
        self._slots = builder.add_c_entries(rows, cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        v = x_full[self.a] - x_full[self.b]
        charge = self.c * v
        scatter_pair(out.q, self.a, self.b, charge)
        if not out.static:
            out.c_vals[self._slots.slice] = two_terminal_values(self.c)

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        c_vals[self._slots.slice] = two_terminal_values(self.c)
        return True


class MutualInductanceBank(DeviceBank):
    """Magnetic couplings between inductor pairs (SPICE ``K`` elements).

    Adds the off-diagonal flux terms: the branch equation of inductor 1
    gains ``-M * dj2/dt`` and vice versa, i.e. ``q[j1] -= M * x[j2]`` and
    the symmetric C-stream entries ``(j1, j2) = (j2, j1) = -M``.
    """

    work_weight = 0.25
    supports_ensemble = True
    ensemble_params = ("m",)

    def __init__(self, names, j1_idx, j2_idx, mutuals):
        super().__init__(names)
        self.j1 = np.asarray(j1_idx, dtype=np.int64)
        self.j2 = np.asarray(j2_idx, dtype=np.int64)
        self.m = np.asarray(mutuals, dtype=float)
        self._c_slots = None

    def register(self, builder: PatternBuilder) -> None:
        rows = np.stack([self.j1, self.j2], axis=1).ravel()
        cols = np.stack([self.j2, self.j1], axis=1).ravel()
        self._c_slots = builder.add_c_entries(rows, cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        np.add.at(out.q, self.j1, -self.m * x_full[self.j2])
        np.add.at(out.q, self.j2, -self.m * x_full[self.j1])
        if not out.static:
            out.c_vals[self._c_slots.slice] = stamp_values(
                -self.m, -self.m, sims=self.sims
            )

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        c_vals[self._c_slots.slice] = stamp_values(-self.m, -self.m, sims=self.sims)
        return True


class InductorBank(DeviceBank):
    """All linear inductors, each owning one branch-current unknown."""

    work_weight = 0.25
    supports_ensemble = True
    ensemble_params = ("l",)

    def __init__(self, names, a_idx, b_idx, branch_idx, inductances):
        super().__init__(names)
        self.a = np.asarray(a_idx, dtype=np.int64)
        self.b = np.asarray(b_idx, dtype=np.int64)
        self.j = np.asarray(branch_idx, dtype=np.int64)
        self.l = np.asarray(inductances, dtype=float)
        self._g_slots = None
        self._c_slots = None

    def register(self, builder: PatternBuilder) -> None:
        a, b, j = self.a, self.b, self.j
        rows = np.stack([a, b, j, j], axis=1).ravel()
        cols = np.stack([j, j, a, b], axis=1).ravel()
        self._g_slots = builder.add_g_entries(rows, cols)
        self._c_slots = builder.add_c_entries(j, j)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        current = x_full[self.j]
        scatter_pair(out.f, self.a, self.b, current)
        np.add.at(out.f, self.j, x_full[self.a] - x_full[self.b])
        np.add.at(out.q, self.j, -self.l * current)
        if not out.static:
            ones = np.ones(self.count)
            out.g_vals[self._g_slots.slice] = stamp_values(
                ones, -ones, ones, -ones, sims=self.sims
            )
            out.c_vals[self._c_slots.slice] = -self.l

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        ones = np.ones(self.count)
        g_vals[self._g_slots.slice] = stamp_values(
            ones, -ones, ones, -ones, sims=self.sims
        )
        c_vals[self._c_slots.slice] = -self.l
        return True
