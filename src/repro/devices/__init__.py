"""Vectorised device banks: the numerical device models."""
