"""Device bank protocol and shared evaluation buffers.

The compiler groups every component of a given physics into one *bank*: a
single object holding numpy index arrays and parameter vectors for all
instances of that device type. Banks evaluate vectorised — one numpy
expression per physical quantity regardless of instance count — which is
what makes a pure-Python SPICE engine fast enough for thousands of Newton
solves.

Contract (all arrays sized ``n_unknowns + 1``; the last element is the
ground/trash slot):

* ``register(builder)`` — once, at compile time: claim Jacobian slots.
* ``eval(x_full, t, out)`` — fill the claimed ``out.g_vals``/``out.c_vals``
  slices and accumulate resistive currents into ``out.f``, charges into
  ``out.q`` and source injections into ``out.s``. Must not retain state:
  banks are evaluated concurrently by WavePipe tasks.
* ``limit(x_proposed, x_previous)`` — optionally adjust the proposed Newton
  iterate in place (junction limiting). Returns True if it changed anything.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.mna.pattern import PatternBuilder

#: Thermal voltage at the fixed simulation temperature (300.15 K).
BOLTZMANN = 1.380649e-23
CHARGE = 1.602176634e-19
TEMPERATURE = 300.15
VT = BOLTZMANN * TEMPERATURE / CHARGE

#: Largest exponent argument evaluated exactly; beyond it the exponential
#: is continued linearly to keep evaluations finite (limiting normally
#: prevents reaching this).
EXP_ARG_MAX = 100.0


def safe_exp(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Overflow-safe exponential with linear continuation.

    Returns ``(value, derivative)`` of a function equal to ``exp(u)`` for
    ``u <= EXP_ARG_MAX`` and to its tangent line beyond, so value and first
    derivative are continuous everywhere.
    """
    u = np.asarray(u, dtype=float)
    clipped = np.minimum(u, EXP_ARG_MAX)
    base = np.exp(clipped)
    over = u > EXP_ARG_MAX
    value = np.where(over, base * (1.0 + (u - EXP_ARG_MAX)), base)
    deriv = base  # tangent slope equals exp(EXP_ARG_MAX) in the linear region
    return value, deriv


class EvalOutputs:
    """Per-evaluation accumulation buffers, reused across Newton iterations.

    Attributes:
        f: resistive-current residual accumulator, length ``n + 1``.
        q: charge accumulator, length ``n + 1``.
        s: source-injection accumulator, length ``n + 1``.
        g_vals / c_vals: Jacobian slot value arrays (dI/dx and dQ/dx).
    """

    def __init__(self, n_unknowns: int, n_g_slots: int, n_c_slots: int):
        self.n = n_unknowns
        self.f = np.zeros(n_unknowns + 1)
        self.q = np.zeros(n_unknowns + 1)
        self.s = np.zeros(n_unknowns + 1)
        self.g_vals = np.zeros(n_g_slots)
        self.c_vals = np.zeros(n_c_slots)
        #: True when g_vals/c_vals are re-seeded from precomputed static
        #: baselines on reset(); banks with constant stamps then skip
        #: rewriting them every eval (the fast path).
        self.static = False
        self._g_base: np.ndarray | None = None
        self._c_base: np.ndarray | None = None
        #: Optional :class:`~repro.mna.pattern.AssemblyWorkspace` for
        #: in-place Jacobian assembly; attached by
        #: :meth:`~repro.mna.system.MnaSystem.make_buffers` on the fast
        #: path, consumed by :meth:`~repro.mna.system.MnaSystem.jacobian`.
        self.workspace = None

    def enable_static_stamps(self, g_base: np.ndarray, c_base: np.ndarray) -> None:
        """Seed resets from shared (read-only) constant-stamp baselines."""
        self._g_base = g_base
        self._c_base = c_base
        self.static = True

    def reset(self) -> None:
        """Zero every accumulator (slot arrays are overwritten, not summed,
        by each owning bank, but zeroing keeps unclaimed slots clean).

        On the static fast path the slot arrays are re-seeded from the
        constant-stamp baselines instead, so banks whose stamps never
        change can skip their per-eval writes entirely."""
        self.f[:] = 0.0
        self.q[:] = 0.0
        self.s[:] = 0.0
        if self.static:
            np.copyto(self.g_vals, self._g_base)
            np.copyto(self.c_vals, self._c_base)
        else:
            self.g_vals[:] = 0.0
            self.c_vals[:] = 0.0


class DeviceBank(abc.ABC):
    """Base class for vectorised device groups."""

    #: Relative work-unit weight of one device evaluation; nonlinear
    #: devices cost more than linear ones (used by the cost model).
    work_weight: float = 1.0

    def __init__(self, names: list[str]):
        self.names = list(names)
        self.count = len(self.names)

    @abc.abstractmethod
    def register(self, builder: PatternBuilder) -> None:
        """Claim Jacobian stamp slots for every instance."""

    @abc.abstractmethod
    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        """Evaluate all instances at solution *x_full* and time *t*."""

    def limit(self, x_proposed: np.ndarray, x_previous: np.ndarray) -> bool:
        """Junction-limit the proposed iterate in place; default no-op."""
        return False

    def write_static_stamps(self, g_vals: np.ndarray, c_vals: np.ndarray) -> bool:
        """Write this bank's constant Jacobian stamps into the baselines.

        Banks whose stamps are operating-point independent (linear
        passives, sources) write their slot values into the full-size
        *g_vals*/*c_vals* baseline arrays once, at setup, and return
        True; their :meth:`eval` may then skip the per-call writes when
        ``out.static`` is set. Nonlinear banks keep the default (write
        nothing, return False) and stamp every evaluation as before.
        """
        return False

    @property
    def work_units(self) -> float:
        """Work units charged per evaluation of this bank."""
        return self.work_weight * self.count

    def __repr__(self) -> str:
        return f"{type(self).__name__}(count={self.count})"


def two_terminal_conductance_pattern(a: np.ndarray, b: np.ndarray):
    """(rows, cols) for the classic 4-entry conductance stamp of each pair.

    Entry order per device: (a,a), (a,b), (b,a), (b,b) with values
    (+g, -g, -g, +g); callers tile values in the same order.
    """
    rows = np.stack([a, a, b, b], axis=1).ravel()
    cols = np.stack([a, b, a, b], axis=1).ravel()
    return rows, cols


def two_terminal_values(g: np.ndarray) -> np.ndarray:
    """Values matching :func:`two_terminal_conductance_pattern` order."""
    return np.stack([g, -g, -g, g], axis=1).ravel()


def scatter_pair(target: np.ndarray, a: np.ndarray, b: np.ndarray, current: np.ndarray) -> None:
    """Accumulate a through-quantity: ``target[a] += current; target[b] -= current``."""
    np.add.at(target, a, current)
    np.add.at(target, b, -current)
