"""Device bank protocol and shared evaluation buffers.

The compiler groups every component of a given physics into one *bank*: a
single object holding numpy index arrays and parameter vectors for all
instances of that device type. Banks evaluate vectorised — one numpy
expression per physical quantity regardless of instance count — which is
what makes a pure-Python SPICE engine fast enough for thousands of Newton
solves.

Contract (all arrays sized ``n_unknowns + 1``; the last element is the
ground/trash slot):

* ``register(builder)`` — once, at compile time: claim Jacobian slots.
* ``eval(x_full, t, out)`` — fill the claimed ``out.g_vals``/``out.c_vals``
  slices and accumulate resistive currents into ``out.f``, charges into
  ``out.q`` and source injections into ``out.s``. Must not retain state:
  banks are evaluated concurrently by WavePipe tasks.
* ``limit(x_proposed, x_previous)`` — optionally adjust the proposed Newton
  iterate in place (junction limiting). Returns True if it changed anything.

Shape contract (scalar vs ensemble)
-----------------------------------

Every bank evaluates in one of two modes, selected by its ``sims``
attribute:

* **Scalar mode** (``sims is None``, the default): parameter vectors are
  ``(n_devices,)``, the solution ``x_full`` is ``(n + 1,)``, and every
  :class:`EvalOutputs` buffer is 1-D — ``f``/``q``/``s`` are ``(n + 1,)``
  and the slot arrays are ``(n_slots,)``. This is the legacy path and is
  bit-for-bit unchanged.
* **Ensemble mode** (``sims == K``): the bank simulates K parameter
  variants of the *same topology* at once. Per-variant parameters are
  ``(n_devices, K)``; topology (index arrays) stays ``(n_devices,)`` and
  identical across variants. ``x_full`` is ``(n + 1, K)`` and every
  :class:`EvalOutputs` buffer gains the trailing ``sims`` axis:
  ``f``/``q``/``s`` are ``(n + 1, K)``, slot arrays ``(n_slots, K)``.

Broadcasting rules: the device axis leads, the ``sims`` axis trails.
A ``(n_devices,)`` constant does **not** broadcast against a
``(n_devices, K)`` value under NumPy's trailing-axis alignment — lift it
to a column first (``p[:, None]``). :func:`stamp_values` does this
automatically for interleaved Jacobian stamps, so banks write one stamp
expression that is correct in both modes. Banks advertise ensemble
capability via the ``supports_ensemble`` class flag; driving an
unsupporting bank with K > 1 raises :class:`~repro.errors.SimulationError`
from :meth:`DeviceBank.ensure_ensemble` rather than a NumPy broadcast
traceback deep inside ``eval``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import SimulationError
from repro.mna.pattern import PatternBuilder

#: Thermal voltage at the fixed simulation temperature (300.15 K).
BOLTZMANN = 1.380649e-23
CHARGE = 1.602176634e-19
TEMPERATURE = 300.15
VT = BOLTZMANN * TEMPERATURE / CHARGE

#: Largest exponent argument evaluated exactly; beyond it the exponential
#: is continued linearly to keep evaluations finite (limiting normally
#: prevents reaching this).
EXP_ARG_MAX = 100.0


def safe_exp(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Overflow-safe exponential with linear continuation.

    Returns ``(value, derivative)`` of a function equal to ``exp(u)`` for
    ``u <= EXP_ARG_MAX`` and to its tangent line beyond, so value and first
    derivative are continuous everywhere.
    """
    u = np.asarray(u, dtype=float)
    clipped = np.minimum(u, EXP_ARG_MAX)
    base = np.exp(clipped)
    over = u > EXP_ARG_MAX
    value = np.where(over, base * (1.0 + (u - EXP_ARG_MAX)), base)
    deriv = base  # tangent slope equals exp(EXP_ARG_MAX) in the linear region
    return value, deriv


class EvalOutputs:
    """Per-evaluation accumulation buffers, reused across Newton iterations.

    Attributes:
        f: resistive-current residual accumulator, length ``n + 1``.
        q: charge accumulator, length ``n + 1``.
        s: source-injection accumulator, length ``n + 1``.
        g_vals / c_vals: Jacobian slot value arrays (dI/dx and dQ/dx).
        sims: None for the scalar path; K for an ensemble of K variants,
            in which case every buffer carries a trailing ``(..., K)``
            axis per the module-level shape contract.
    """

    def __init__(self, n_unknowns: int, n_g_slots: int, n_c_slots: int, sims: int | None = None):
        self.n = n_unknowns
        self.sims = sims
        tail = () if sims is None else (sims,)
        self.f = np.zeros((n_unknowns + 1, *tail))
        self.q = np.zeros((n_unknowns + 1, *tail))
        self.s = np.zeros((n_unknowns + 1, *tail))
        self.g_vals = np.zeros((n_g_slots, *tail))
        self.c_vals = np.zeros((n_c_slots, *tail))
        #: True when g_vals/c_vals are re-seeded from precomputed static
        #: baselines on reset(); banks with constant stamps then skip
        #: rewriting them every eval (the fast path).
        self.static = False
        self._g_base: np.ndarray | None = None
        self._c_base: np.ndarray | None = None
        #: Optional :class:`~repro.mna.pattern.AssemblyWorkspace` for
        #: in-place Jacobian assembly; attached by
        #: :meth:`~repro.mna.system.MnaSystem.make_buffers` on the fast
        #: path, consumed by :meth:`~repro.mna.system.MnaSystem.jacobian`.
        self.workspace = None

    def enable_static_stamps(self, g_base: np.ndarray, c_base: np.ndarray) -> None:
        """Seed resets from shared (read-only) constant-stamp baselines."""
        self._g_base = g_base
        self._c_base = c_base
        self.static = True

    def reset(self) -> None:
        """Zero every accumulator (slot arrays are overwritten, not summed,
        by each owning bank, but zeroing keeps unclaimed slots clean).

        On the static fast path the slot arrays are re-seeded from the
        constant-stamp baselines instead, so banks whose stamps never
        change can skip their per-eval writes entirely."""
        self.f[:] = 0.0
        self.q[:] = 0.0
        self.s[:] = 0.0
        if self.static:
            np.copyto(self.g_vals, self._g_base)
            np.copyto(self.c_vals, self._c_base)
        else:
            self.g_vals[:] = 0.0
            self.c_vals[:] = 0.0


class DeviceBank(abc.ABC):
    """Base class for vectorised device groups."""

    #: Relative work-unit weight of one device evaluation; nonlinear
    #: devices cost more than linear ones (used by the cost model).
    work_weight: float = 1.0

    #: Capability flag: True when this bank honours the ensemble shape
    #: contract (trailing ``sims`` axis on parameters, stamps and
    #: limiting). Concrete banks opt in explicitly; the base default is
    #: False so new bank types fail loudly rather than mis-broadcast.
    supports_ensemble: bool = False

    #: Per-device float parameter attributes that vary across ensemble
    #: variants; :mod:`repro.mna.ensemble` stacks these into
    #: ``(n_devices, K)`` arrays when building an ensemble bank. Index
    #: arrays and everything not listed here must be identical across
    #: variants (same topology).
    ensemble_params: tuple[str, ...] = ()

    #: None in scalar mode; K when this bank instance evaluates an
    #: ensemble of K parameter variants.
    sims: int | None = None

    def __init__(self, names: list[str]):
        self.names = list(names)
        self.count = len(self.names)

    def ensure_ensemble(self, sims: int) -> None:
        """Raise a clear error when this bank cannot run K > 1 variants."""
        if sims > 1 and not self.supports_ensemble:
            raise SimulationError(
                f"{type(self).__name__} does not support ensemble evaluation: "
                f"asked for {sims} variants but supports_ensemble is False. "
                "Run these circuits as separate jobs instead."
            )

    @abc.abstractmethod
    def register(self, builder: PatternBuilder) -> None:
        """Claim Jacobian stamp slots for every instance."""

    @abc.abstractmethod
    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        """Evaluate all instances at solution *x_full* and time *t*."""

    def limit(
        self,
        x_proposed: np.ndarray,
        x_previous: np.ndarray,
        changed_cols: np.ndarray | None = None,
    ) -> bool:
        """Junction-limit the proposed iterate in place; default no-op.

        In ensemble mode *changed_cols* (a ``(K,)`` bool array, when
        provided) must be OR-updated with True for every variant column
        this bank altered, so the solver can track per-variant limiting
        without comparing arrays.
        """
        return False

    def write_static_stamps(self, g_vals: np.ndarray, c_vals: np.ndarray) -> bool:
        """Write this bank's constant Jacobian stamps into the baselines.

        Banks whose stamps are operating-point independent (linear
        passives, sources) write their slot values into the full-size
        *g_vals*/*c_vals* baseline arrays once, at setup, and return
        True; their :meth:`eval` may then skip the per-call writes when
        ``out.static`` is set. Nonlinear banks keep the default (write
        nothing, return False) and stamp every evaluation as before.
        """
        return False

    @property
    def work_units(self) -> float:
        """Work units charged per evaluation of this bank."""
        return self.work_weight * self.count

    def __repr__(self) -> str:
        return f"{type(self).__name__}(count={self.count})"


def two_terminal_conductance_pattern(a: np.ndarray, b: np.ndarray):
    """(rows, cols) for the classic 4-entry conductance stamp of each pair.

    Entry order per device: (a,a), (a,b), (b,a), (b,b) with values
    (+g, -g, -g, +g); callers tile values in the same order.
    """
    rows = np.stack([a, a, b, b], axis=1).ravel()
    cols = np.stack([a, b, a, b], axis=1).ravel()
    return rows, cols


def two_terminal_values(g: np.ndarray) -> np.ndarray:
    """Values matching :func:`two_terminal_conductance_pattern` order.

    Accepts ``(n_devices,)`` (scalar mode) or ``(n_devices, K)``
    (ensemble mode); the interleave keeps the device-major slot order in
    both cases, yielding ``(4*n_devices,)`` or ``(4*n_devices, K)``.
    """
    g = np.asarray(g)
    if g.ndim == 2:
        return np.stack([g, -g, -g, g], axis=1).reshape(-1, g.shape[1])
    return np.stack([g, -g, -g, g], axis=1).ravel()


def stamp_values(*parts: np.ndarray, sims: int | None = None) -> np.ndarray:
    """Interleave per-device stamp parts into device-major slot order.

    Scalar mode (``sims is None``): each part is ``(n_devices,)`` and the
    result is the flat ``(P*n_devices,)`` interleave — all P entries of
    device 0, then device 1, and so on — exactly
    ``np.stack(parts, axis=1).ravel()``.

    Ensemble mode (``sims == K``): parts may be ``(n_devices, K)``
    per-variant arrays or ``(n_devices,)`` variant-invariant constants
    (lifted to a broadcast column automatically); the result is
    ``(P*n_devices, K)`` in the same device-major slot order, suitable
    for assignment into an ensemble :class:`EvalOutputs` slot slice.
    """
    if sims is None:
        return np.stack(parts, axis=1).ravel()
    lifted = [
        p if p.ndim == 2 else np.broadcast_to(p[:, None], (p.shape[0], sims))
        for p in (np.asarray(part, dtype=float) for part in parts)
    ]
    return np.stack(lifted, axis=1).reshape(-1, sims)


def lift_sims(values: np.ndarray, sims: int | None) -> np.ndarray:
    """Broadcast a per-device ``(n_devices,)`` array to ``(n_devices, sims)``.

    No-op in scalar mode (``sims is None``) or when *values* already
    carries the sims axis. Needed because NumPy aligns trailing axes, so
    a variant-invariant per-device vector must be lifted to a column
    before accumulating into an ensemble buffer.
    """
    if sims is None or values.ndim == 2:
        return values
    return np.broadcast_to(values[:, None], (values.shape[0], sims))


def scatter_pair(target: np.ndarray, a: np.ndarray, b: np.ndarray, current: np.ndarray) -> None:
    """Accumulate a through-quantity: ``target[a] += current; target[b] -= current``."""
    np.add.at(target, a, current)
    np.add.at(target, b, -current)
