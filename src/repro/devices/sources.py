"""Independent and controlled source banks.

Independent sources carry a :class:`~repro.circuit.sources.SourceWaveform`
each and a *scale* factor the DC source-stepping homotopy ramps from 0 to
1. Controlled sources (E/G/F/H) are linear and stamp constants.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.sources import SourceWaveform
from repro.devices.base import (
    DeviceBank,
    EvalOutputs,
    lift_sims,
    scatter_pair,
    stamp_values,
)
from repro.mna.pattern import PatternBuilder


class VoltageSourceBank(DeviceBank):
    """Independent voltage sources, one branch-current unknown each.

    Rows: KCL at plus/minus get ``+-x[j]``; branch row enforces
    ``v_plus - v_minus - scale*V(t) = 0``.
    """

    work_weight = 0.5
    supports_ensemble = True

    def __init__(self, names, plus_idx, minus_idx, branch_idx, waveforms):
        super().__init__(names)
        self.p = np.asarray(plus_idx, dtype=np.int64)
        self.m = np.asarray(minus_idx, dtype=np.int64)
        self.j = np.asarray(branch_idx, dtype=np.int64)
        self.waveforms: list[SourceWaveform] = list(waveforms)
        #: Homotopy scale for DC source stepping; 1.0 in normal operation.
        self.scale = 1.0
        self._slots = None

    def register(self, builder: PatternBuilder) -> None:
        p, m, j = self.p, self.m, self.j
        rows = np.stack([p, m, j, j], axis=1).ravel()
        cols = np.stack([j, j, p, m], axis=1).ravel()
        self._slots = builder.add_g_entries(rows, cols)

    def _levels(self, t: float) -> np.ndarray:
        return np.array([w.value(t) for w in self.waveforms])

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        current = x_full[self.j]
        scatter_pair(out.f, self.p, self.m, current)
        np.add.at(out.f, self.j, x_full[self.p] - x_full[self.m])
        np.add.at(out.s, self.j, lift_sims(-self.scale * self._levels(t), self.sims))
        if not out.static:
            ones = np.ones(self.count)
            out.g_vals[self._slots.slice] = stamp_values(
                ones, -ones, ones, -ones, sims=self.sims
            )

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        # Only the source *injection* depends on time/scale; the branch
        # constraint rows are constant +-1 stamps.
        ones = np.ones(self.count)
        g_vals[self._slots.slice] = stamp_values(
            ones, -ones, ones, -ones, sims=self.sims
        )
        return True

    def branch_index(self, name: str) -> int:
        """MNA unknown index of the branch current of source *name*."""
        return int(self.j[self.names.index(name)])


class CurrentSourceBank(DeviceBank):
    """Independent current sources (SPICE convention: positive value flows
    from plus, through the source, out of minus)."""

    work_weight = 0.25
    supports_ensemble = True

    def __init__(self, names, plus_idx, minus_idx, waveforms):
        super().__init__(names)
        self.p = np.asarray(plus_idx, dtype=np.int64)
        self.m = np.asarray(minus_idx, dtype=np.int64)
        self.waveforms: list[SourceWaveform] = list(waveforms)
        self.scale = 1.0

    def register(self, builder: PatternBuilder) -> None:
        pass  # pure source injection: no Jacobian entries

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        levels = self.scale * np.array([w.value(t) for w in self.waveforms])
        scatter_pair(out.s, self.p, self.m, lift_sims(levels, self.sims))

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        return True  # no Jacobian entries at all


class VcvsBank(DeviceBank):
    """Voltage-controlled voltage sources (E): v_p - v_m = gain*(v_cp - v_cm)."""

    work_weight = 0.5
    supports_ensemble = True
    ensemble_params = ("gain",)

    def __init__(self, names, plus_idx, minus_idx, cp_idx, cm_idx, branch_idx, gains):
        super().__init__(names)
        self.p = np.asarray(plus_idx, dtype=np.int64)
        self.m = np.asarray(minus_idx, dtype=np.int64)
        self.cp = np.asarray(cp_idx, dtype=np.int64)
        self.cm = np.asarray(cm_idx, dtype=np.int64)
        self.j = np.asarray(branch_idx, dtype=np.int64)
        self.gain = np.asarray(gains, dtype=float)
        self._slots = None

    def register(self, builder: PatternBuilder) -> None:
        p, m, j, cp, cm = self.p, self.m, self.j, self.cp, self.cm
        rows = np.stack([p, m, j, j, j, j], axis=1).ravel()
        cols = np.stack([j, j, p, m, cp, cm], axis=1).ravel()
        self._slots = builder.add_g_entries(rows, cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        current = x_full[self.j]
        scatter_pair(out.f, self.p, self.m, current)
        branch = (
            x_full[self.p]
            - x_full[self.m]
            - self.gain * (x_full[self.cp] - x_full[self.cm])
        )
        np.add.at(out.f, self.j, branch)
        if not out.static:
            ones = np.ones(self.count)
            out.g_vals[self._slots.slice] = stamp_values(
                ones, -ones, ones, -ones, -self.gain, self.gain, sims=self.sims
            )

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        ones = np.ones(self.count)
        g_vals[self._slots.slice] = stamp_values(
            ones, -ones, ones, -ones, -self.gain, self.gain, sims=self.sims
        )
        return True


class VccsBank(DeviceBank):
    """Voltage-controlled current sources (G): i(p->m) = gm*(v_cp - v_cm)."""

    work_weight = 0.5
    supports_ensemble = True
    ensemble_params = ("gm",)

    def __init__(self, names, plus_idx, minus_idx, cp_idx, cm_idx, gms):
        super().__init__(names)
        self.p = np.asarray(plus_idx, dtype=np.int64)
        self.m = np.asarray(minus_idx, dtype=np.int64)
        self.cp = np.asarray(cp_idx, dtype=np.int64)
        self.cm = np.asarray(cm_idx, dtype=np.int64)
        self.gm = np.asarray(gms, dtype=float)
        self._slots = None

    def register(self, builder: PatternBuilder) -> None:
        p, m, cp, cm = self.p, self.m, self.cp, self.cm
        rows = np.stack([p, p, m, m], axis=1).ravel()
        cols = np.stack([cp, cm, cp, cm], axis=1).ravel()
        self._slots = builder.add_g_entries(rows, cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        current = self.gm * (x_full[self.cp] - x_full[self.cm])
        scatter_pair(out.f, self.p, self.m, current)
        if not out.static:
            out.g_vals[self._slots.slice] = stamp_values(
                self.gm, -self.gm, -self.gm, self.gm, sims=self.sims
            )

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        g_vals[self._slots.slice] = stamp_values(
            self.gm, -self.gm, -self.gm, self.gm, sims=self.sims
        )
        return True


class CccsBank(DeviceBank):
    """Current-controlled current sources (F): i(p->m) = gain * i(ctrl branch)."""

    work_weight = 0.5
    supports_ensemble = True
    ensemble_params = ("gain",)

    def __init__(self, names, plus_idx, minus_idx, ctrl_branch_idx, gains):
        super().__init__(names)
        self.p = np.asarray(plus_idx, dtype=np.int64)
        self.m = np.asarray(minus_idx, dtype=np.int64)
        self.jc = np.asarray(ctrl_branch_idx, dtype=np.int64)
        self.gain = np.asarray(gains, dtype=float)
        self._slots = None

    def register(self, builder: PatternBuilder) -> None:
        rows = np.stack([self.p, self.m], axis=1).ravel()
        cols = np.stack([self.jc, self.jc], axis=1).ravel()
        self._slots = builder.add_g_entries(rows, cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        current = self.gain * x_full[self.jc]
        scatter_pair(out.f, self.p, self.m, current)
        if not out.static:
            out.g_vals[self._slots.slice] = stamp_values(
                self.gain, -self.gain, sims=self.sims
            )

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        g_vals[self._slots.slice] = stamp_values(self.gain, -self.gain, sims=self.sims)
        return True


class CcvsBank(DeviceBank):
    """Current-controlled voltage sources (H): v_p - v_m = r * i(ctrl branch)."""

    work_weight = 0.5
    supports_ensemble = True
    ensemble_params = ("r",)

    def __init__(self, names, plus_idx, minus_idx, ctrl_branch_idx, branch_idx, rs):
        super().__init__(names)
        self.p = np.asarray(plus_idx, dtype=np.int64)
        self.m = np.asarray(minus_idx, dtype=np.int64)
        self.jc = np.asarray(ctrl_branch_idx, dtype=np.int64)
        self.j = np.asarray(branch_idx, dtype=np.int64)
        self.r = np.asarray(rs, dtype=float)
        self._slots = None

    def register(self, builder: PatternBuilder) -> None:
        p, m, j, jc = self.p, self.m, self.j, self.jc
        rows = np.stack([p, m, j, j, j], axis=1).ravel()
        cols = np.stack([j, j, p, m, jc], axis=1).ravel()
        self._slots = builder.add_g_entries(rows, cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        current = x_full[self.j]
        scatter_pair(out.f, self.p, self.m, current)
        branch = x_full[self.p] - x_full[self.m] - self.r * x_full[self.jc]
        np.add.at(out.f, self.j, branch)
        if not out.static:
            ones = np.ones(self.count)
            out.g_vals[self._slots.slice] = stamp_values(
                ones, -ones, ones, -ones, -self.r, sims=self.sims
            )

    def write_static_stamps(self, g_vals, c_vals) -> bool:
        ones = np.ones(self.count)
        g_vals[self._slots.slice] = stamp_values(
            ones, -ones, ones, -ones, -self.r, sims=self.sims
        )
        return True
