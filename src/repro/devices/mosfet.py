"""Level-1 (Shichman–Hodges) MOSFET bank.

DC model: square-law with channel-length modulation and optional body
effect; drain/source roles swap automatically when ``vds`` changes sign
(SPICE "mode" handling), and PMOS devices are evaluated in a sign-flipped
space so one code path serves both polarities.

Charge model (documented simplification, see DESIGN.md): gate charge is
stored on voltage-independent capacitances ``Cgs = Cgd = Cox*W*L/2`` plus
overlaps — this preserves circuit dynamics, loading and stiffness (what
WavePipe's time-stepping cares about) while keeping the Jacobian's C-stream
constant. The strong nonlinearity of the circuit remains in the DC
square-law current.

Convergence relies on the solver's global update damping rather than
per-device fetlim state: the square law is polynomial (no overflow), and
stateless evaluation is required so concurrent WavePipe tasks can share
banks safely.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import DeviceBank, EvalOutputs, scatter_pair, stamp_values
from repro.mna.pattern import PatternBuilder


class MosfetBank(DeviceBank):
    """All level-1 MOSFETs (both polarities in one bank)."""

    work_weight = 2.0
    supports_ensemble = True
    ensemble_params = ("sign", "vto", "beta", "lam", "gamma", "phi", "cgs", "cgd")

    def __init__(self, names, d_idx, g_idx, s_idx, b_idx, models, widths, lengths, gmin):
        super().__init__(names)
        self.d = np.asarray(d_idx, dtype=np.int64)
        self.g = np.asarray(g_idx, dtype=np.int64)
        self.s = np.asarray(s_idx, dtype=np.int64)
        self.b = np.asarray(b_idx, dtype=np.int64)
        widths = np.asarray(widths, dtype=float)
        lengths = np.asarray(lengths, dtype=float)
        self.sign = np.array([1.0 if m.polarity == "nmos" else -1.0 for m in models])
        self.vto = np.array([m.vto for m in models])
        self.beta = np.array([m.kp for m in models]) * widths / lengths
        self.lam = np.array([m.lambda_ for m in models])
        self.gamma = np.array([m.gamma for m in models])
        self.phi = np.array([m.phi for m in models])
        cox_total = np.array([m.cox for m in models]) * widths * lengths
        self.cgs = 0.5 * cox_total + np.array([m.cgso for m in models]) * widths
        self.cgd = 0.5 * cox_total + np.array([m.cgdo for m in models]) * widths
        self.gmin = gmin
        self._g_slots = None
        self._c_slots = None

    def register(self, builder: PatternBuilder) -> None:
        d, g, s, b = self.d, self.g, self.s, self.b
        # Channel current: rows (d, s) x cols (d, g, s, b), plus gmin d-s
        # handled inside the same 8 entries.
        rows = np.stack([d, d, d, d, s, s, s, s], axis=1).ravel()
        cols = np.stack([d, g, s, b, d, g, s, b], axis=1).ravel()
        self._g_slots = builder.add_g_entries(rows, cols)
        # Gate charge: rows (g, s, d) coupling to (g, s, d).
        c_rows = np.stack([g, g, g, s, s, d, d], axis=1).ravel()
        c_cols = np.stack([g, s, d, g, s, g, d], axis=1).ravel()
        self._c_slots = builder.add_c_entries(c_rows, c_cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        p = self.sign
        vd = x_full[self.d]
        vg = x_full[self.g]
        vs = x_full[self.s]
        vb = x_full[self.b]

        u_ds = p * (vd - vs)
        u_gs = p * (vg - vs)
        u_bs = p * (vb - vs)

        forward = u_ds >= 0.0
        # Effective (mode-resolved) branch voltages.
        e_ds = np.where(forward, u_ds, -u_ds)
        e_gs = np.where(forward, u_gs, u_gs - u_ds)
        e_bs = np.where(forward, u_bs, u_bs - u_ds)

        # Threshold with body effect (vbs clamped below phi for the sqrt).
        sqrt_arg = np.maximum(self.phi - e_bs, 1e-12)
        vth = self.vto + self.gamma * (np.sqrt(sqrt_arg) - np.sqrt(self.phi))
        dvth_dbs = -0.5 * self.gamma / np.sqrt(sqrt_arg)
        vov = e_gs - vth

        on = vov > 0.0
        linear = on & (e_ds < vov)
        clm = 1.0 + self.lam * e_ds

        # Saturation expressions (then overridden where linear / off).
        ids = 0.5 * self.beta * vov**2 * clm
        gm = self.beta * vov * clm
        gds = 0.5 * self.lam * self.beta * vov**2

        ids_lin = self.beta * (vov - 0.5 * e_ds) * e_ds * clm
        gm_lin = self.beta * e_ds * clm
        gds_lin = self.beta * (vov - e_ds) * clm + self.lam * self.beta * (
            vov - 0.5 * e_ds
        ) * e_ds

        ids = np.where(linear, ids_lin, ids)
        gm = np.where(linear, gm_lin, gm)
        gds = np.where(linear, gds_lin, gds)
        ids = np.where(on, ids, 0.0)
        gm = np.where(on, gm, 0.0)
        gds = np.where(on, gds, 0.0)
        gmb = gm * (-dvth_dbs)

        # Map effective-space conductances to real-node partials of the
        # drain current I_D (current entering the drain terminal).
        # Forward:  I_D = p*ids, partials (d,g,s,b) = (gds, gm, -(gm+gds+gmb), gmb)
        # Reverse:  I_D = -p*ids', partials = (gm+gds+gmb, -gm, -gds, -gmb)
        a_d = np.where(forward, gds, gm + gds + gmb)
        a_g = np.where(forward, gm, -gm)
        a_s = np.where(forward, -(gm + gds + gmb), -gds)
        a_b = np.where(forward, gmb, -gmb)
        i_drain = np.where(forward, p * ids, -p * ids)

        # gmin between drain and source keeps off devices well-conditioned.
        i_drain = i_drain + self.gmin * (vd - vs)
        a_d = a_d + self.gmin
        a_s = a_s - self.gmin

        scatter_pair(out.f, self.d, self.s, i_drain)
        out.g_vals[self._g_slots.slice] = stamp_values(
            a_d, a_g, a_s, a_b, -a_d, -a_g, -a_s, -a_b, sims=self.sims
        )

        # Constant gate capacitances.
        q_gs = self.cgs * (vg - vs)
        q_gd = self.cgd * (vg - vd)
        np.add.at(out.q, self.g, q_gs + q_gd)
        np.add.at(out.q, self.s, -q_gs)
        np.add.at(out.q, self.d, -q_gd)
        out.c_vals[self._c_slots.slice] = stamp_values(
            self.cgs + self.cgd,
            -self.cgs,
            -self.cgd,
            -self.cgs,
            self.cgs,
            -self.cgd,
            self.cgd,
            sims=self.sims,
        )

    def operating_regions(self, x_full: np.ndarray) -> list[str]:
        """Human-readable region of each device ("off"/"linear"/"saturation").

        Diagnostic helper used by examples and tests.
        """
        p = self.sign
        u_ds = p * (x_full[self.d] - x_full[self.s])
        u_gs = p * (x_full[self.g] - x_full[self.s])
        e_ds = np.abs(u_ds)
        e_gs = np.where(u_ds >= 0, u_gs, u_gs - u_ds)
        vov = e_gs - self.vto
        labels = []
        for i in range(self.count):
            if vov[i] <= 0:
                labels.append("off")
            elif e_ds[i] < vov[i]:
                labels.append("linear")
            else:
                labels.append("saturation")
        return labels
