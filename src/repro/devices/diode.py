"""Junction diode bank (Shockley model with depletion + diffusion charge).

Current: ``i = IS*(exp(vd/(n*VT)) - 1) + gmin*vd`` with an overflow-safe
exponential; the gmin term is the standard SPICE junction regularisation.

Charge: depletion capacitance integrated to a charge with the SPICE
forward-bias linearisation above ``fc*vj`` (keeps charge and capacitance
continuous), plus diffusion charge ``tt * i_junction``.

Newton limiting uses the classic SPICE ``pnjlim``: junction voltages are
pulled back onto a logarithmic trajectory once they exceed the critical
voltage, which is what makes exponential devices converge from bad initial
guesses.

Series resistance is not handled here: the compiler synthesises an internal
node and an explicit resistor when the model card has ``rs > 0``.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.components import DiodeModel
from repro.devices.base import (
    VT,
    DeviceBank,
    EvalOutputs,
    safe_exp,
    scatter_pair,
    two_terminal_conductance_pattern,
    two_terminal_values,
)
from repro.mna.pattern import PatternBuilder

#: Depletion-capacitance forward-bias linearisation knee (SPICE ``fc``).
FC = 0.5


def pnjlim(vnew: np.ndarray, vold: np.ndarray, vt: np.ndarray, vcrit: np.ndarray):
    """SPICE junction-voltage limiter (vectorised).

    Returns ``(vlimited, changed)`` where *changed* is a boolean mask of
    entries that were pulled back. Shapes follow the ensemble contract:
    all four inputs are ``(n_devices,)`` or all are ``(n_devices, K)``.
    """
    vnew = np.asarray(vnew, dtype=float).copy()
    vold = np.asarray(vold, dtype=float)
    hot = (vnew > vcrit) & (np.abs(vnew - vold) > 2.0 * vt)
    changed = np.zeros(vnew.shape, dtype=bool)
    if not hot.any():
        return vnew, changed

    for pos in zip(*np.nonzero(hot)):
        if vold[pos] > 0:
            arg = 1.0 + (vnew[pos] - vold[pos]) / vt[pos]
            if arg > 0:
                vnew[pos] = vold[pos] + vt[pos] * np.log(arg)
            else:
                vnew[pos] = vcrit[pos]
        else:
            vnew[pos] = vt[pos] * np.log(vnew[pos] / vt[pos])
        changed[pos] = True
    return vnew, changed


def depletion_charge(v: np.ndarray, cj0: np.ndarray, vj: np.ndarray, m: np.ndarray):
    """Depletion charge and capacitance with forward-bias linearisation.

    For ``v < FC*vj``:   q = cj0*vj/(1-m) * (1 - (1 - v/vj)^(1-m))
    For ``v >= FC*vj``:  capacitance continues linearly in v (SPICE).

    Returns ``(charge, capacitance)`` arrays.
    """
    v = np.asarray(v, dtype=float)
    knee = FC * vj
    below = v < knee
    one_m = 1.0 - m

    ratio = 1.0 - np.where(below, v, knee) / vj  # > 0 by construction
    q_below = cj0 * vj / one_m * (1.0 - ratio ** one_m)
    c_below = cj0 * ratio ** (-m)

    # Above the knee: c(v) = c_knee * (1 + m*(v - knee)/(vj*(1-FC)))
    c_knee = cj0 * (1.0 - FC) ** (-m)
    q_knee = cj0 * vj / one_m * (1.0 - (1.0 - FC) ** one_m)
    dv = v - knee
    slope = c_knee * m / (vj * (1.0 - FC))
    q_above = q_knee + c_knee * dv + 0.5 * slope * dv * dv
    c_above = c_knee + slope * dv

    charge = np.where(below, q_below, q_above)
    cap = np.where(below, c_below, c_above)
    return charge, cap


class DiodeBank(DeviceBank):
    """All junction diodes sharing the Shockley equations (per-instance params)."""

    work_weight = 1.0
    supports_ensemble = True
    ensemble_params = ("isat", "n", "cj0", "vj", "m", "tt", "vt", "vcrit")

    def __init__(self, names, anode_idx, cathode_idx, models, areas, gmin: float):
        super().__init__(names)
        self.a = np.asarray(anode_idx, dtype=np.int64)
        self.b = np.asarray(cathode_idx, dtype=np.int64)
        areas = np.asarray(areas, dtype=float)
        self.isat = np.array([m.is_ for m in models]) * areas
        self.n = np.array([m.n for m in models])
        self.cj0 = np.array([m.cj0 for m in models]) * areas
        self.vj = np.array([m.vj for m in models])
        self.m = np.array([m.m for m in models])
        self.tt = np.array([m.tt for m in models])
        self.gmin = gmin
        self.vt = self.n * VT
        self.vcrit = self.vt * np.log(self.vt / (np.sqrt(2.0) * self.isat))
        self._g_slots = None
        self._c_slots = None
        self._has_charge = bool(np.any(self.cj0 > 0) or np.any(self.tt > 0))

    @classmethod
    def single_model(cls, names, anode_idx, cathode_idx, model: DiodeModel, gmin: float):
        """Convenience constructor for banks sharing one model card."""
        models = [model] * len(names)
        areas = [1.0] * len(names)
        return cls(names, anode_idx, cathode_idx, models, areas, gmin)

    def register(self, builder: PatternBuilder) -> None:
        rows, cols = two_terminal_conductance_pattern(self.a, self.b)
        self._g_slots = builder.add_g_entries(rows, cols)
        self._c_slots = builder.add_c_entries(rows, cols)

    def eval(self, x_full: np.ndarray, t: float, out: EvalOutputs) -> None:
        vd = x_full[self.a] - x_full[self.b]
        expo, dexpo = safe_exp(vd / self.vt)
        i_junction = self.isat * (expo - 1.0)
        g_junction = self.isat * dexpo / self.vt

        current = i_junction + self.gmin * vd
        conductance = g_junction + self.gmin
        scatter_pair(out.f, self.a, self.b, current)
        out.g_vals[self._g_slots.slice] = two_terminal_values(conductance)

        q_dep, c_dep = depletion_charge(vd, self.cj0, self.vj, self.m)
        charge = q_dep + self.tt * i_junction
        cap = c_dep + self.tt * g_junction
        scatter_pair(out.q, self.a, self.b, charge)
        out.c_vals[self._c_slots.slice] = two_terminal_values(cap)

    def limit(
        self,
        x_proposed: np.ndarray,
        x_previous: np.ndarray,
        changed_cols: np.ndarray | None = None,
    ) -> bool:
        vnew = x_proposed[self.a] - x_proposed[self.b]
        vold = x_previous[self.a] - x_previous[self.b]
        vlim, changed = pnjlim(vnew, vold, self.vt, self.vcrit)
        if not changed.any():
            return False
        if changed_cols is not None and changed.ndim == 2:
            changed_cols |= changed.any(axis=0)
        # Apply the voltage correction across the junction symmetrically
        # (cathode side held, anode adjusted) unless the anode is ground.
        delta = vlim - vnew
        trash = out_of_range(x_proposed)
        for pos in zip(*np.nonzero(changed)):
            i = pos[0]
            ai, bi = self.a[i], self.b[i]
            if ai < trash:
                x_proposed[(ai, *pos[1:])] += delta[pos]
            else:
                x_proposed[(bi, *pos[1:])] -= delta[pos]
        return True


def out_of_range(x_full: np.ndarray) -> int:
    """Index of the trash/ground slot (last row) in a padded vector."""
    return x_full.shape[0] - 1
