"""Table R12: service farm under deterministic mixed load.

Reproduction claim (extension, no paper counterpart): the
simulation-as-a-service layer — persistent content-hash queue, farm
nodes sharing one result cache, HTTP front end — absorbs a seeded
mixed workload with zero request errors, drains completely, and
executes each distinct spec exactly once: submissions minus dedups
equals completed jobs equals unique content hashes.  Because the load
generator's op sequence is seeded and response-independent and the
monitoring endpoints are unmetered, the counter dump is deterministic
and feeds the ``repro perf diff`` gate.
"""

from repro.bench.experiments import table_r12, table_r12_smoke


def _check(result):
    load = result.data["load"]
    assert load["errors"] == 0, f"loadgen saw {load['errors']} request errors"
    assert load["rejected"] == 0, "unexpected backpressure (no quota configured)"
    assert load["drained"], f"queue failed to drain: {load['counts']}"
    assert load["counts"] == {"done": load["unique_jobs"]}
    # each distinct spec executed exactly once across the farm
    assert result.data["executed"] == load["unique_jobs"]
    assert load["results_fetched"] == load["unique_jobs"]
    assert load["campaigns"] > 0 and load["deduped"] > 0


def test_table_r12_service(run_once):
    result = run_once(table_r12)
    _check(result)


def test_table_r12_smoke(run_once):
    result = run_once(table_r12_smoke)
    _check(result)
