"""Table R5: waveform accuracy of WavePipe vs sequential.

The paper's central correctness claim: pipelining does not jeopardise
accuracy. Deviations must stay within integration-tolerance scale
(oscillators are excluded from the tight bound: their phase is chaotic
in the cycle count simulated, so pointwise deviation grows with time
even between two equally correct runs — frequency is checked in Fig R3).
"""

from repro.bench.experiments import table_r5


def test_table_r5_accuracy(run_once):
    result = run_once(table_r5)
    for name, cells in result.data.items():
        bound = 0.15 if name == "ring5" else 0.05
        assert cells["worst_rel"] <= bound, (
            f"{name}: worst relative deviation {cells['worst_rel']:.3e} "
            f"exceeds {bound}"
        )
