"""Table R10: batch-campaign throughput, serial vs process pool.

Reproduction claim (extension, no paper counterpart): job-level
parallelism through the ``repro.jobs`` process pool scales Monte Carlo
campaign throughput with worker count on multi-core hosts — the axis
orthogonal to WavePipe's intra-run pipelining — and the content-addressed
result cache serves a campaign re-run without executing a single job.

The wall-clock speedup assertion only makes sense with physical cores to
scale onto; on single-core CI runners the table still runs and the
correctness/caching claims still hold, but the speedup check is skipped.
"""

import os

from repro.bench.experiments import table_r10, table_r10_smoke

CORES = os.cpu_count() or 1


def _check_rows(data):
    for key, cells in data.items():
        assert cells["passed"], f"{key}: campaign had failed jobs"
    serial = data["serial"]
    cached = data["cached"]
    assert cached["cache_hits"] == cached["jobs"], "re-run was not fully cache-served"
    assert cached["wall_seconds"] < serial["wall_seconds"], (
        "cache-served re-run should be far cheaper than simulating"
    )


def test_table_r10_batch(run_once):
    result = run_once(table_r10)
    _check_rows(result.data)
    if CORES >= 4:
        assert result.data["process4"]["speedup"] > 1.3, (
            f"4-worker pool speedup {result.data['process4']['speedup']:.2f}x "
            f"on a {CORES}-core host"
        )
    if CORES >= 2:
        assert result.data["process2"]["speedup"] > 1.1


def test_table_r10_smoke(run_once):
    result = run_once(table_r10_smoke)
    _check_rows(result.data)
