"""Table R13: WTM domain decomposition vs monolithic and WR baseline.

Reproduction claim (extension, no paper counterpart): partitioning the
circuit at its weak couplings and exchanging boundary waveforms opens a
third parallelism axis that composes with WavePipe's time axis — and on
rate-disparate workloads it reaches a speedup the monolithic engine
cannot: ``mixedrate6``'s fast block forces a monolithic adaptive solver
dense across the *whole* circuit, while the multirate WTM run lets the
five quiet blocks stride, beating the best monolithic virtual-clock cost
outright. On the deep ``rcblocks6`` chain the Gauss-Seidel coordinator
also converges in fewer outer sweeps than the naive waveform-relaxation
baseline (``repro.baselines.relaxation``) on the identical cut.

Speed without agreement is a bug: the full table classifies every
headline WTM config on the oracle tolerance ladder and requires the
``loose`` (1e-3) rung or tighter.
"""

from repro.bench.experiments import table_r13, table_r13_smoke

LOOSE = 1e-3


def _check_rows(data):
    for name, cells in data.items():
        assert cells["wr_converged"], f"{name}: relaxation baseline diverged"
        for mode, wtm in cells["wtm"].items():
            assert wtm["converged"], f"{name}: wtm/{mode} did not converge"
            assert wtm["outer_iterations"] >= 1
        if "tier" in cells:
            assert cells["agreement_ok"], (
                f"{name}: WTM classified {cells['tier']} "
                f"(worst {cells['worst_rel_dev']:.3e} > loose {LOOSE:g})"
            )

    # Headline 1 — circuit-axis beats the monolithic clock where time-axis
    # parallelism cannot: the multirate run undercuts both the sequential
    # and the WavePipe monolithic cost.
    mixed = data["mixedrate6"]
    jacobi = mixed["wtm"]["jacobi"]
    assert jacobi["virtual_work"] < mixed["mono_best_virtual"], (
        f"mixedrate6: wtm jacobi virtual work {jacobi['virtual_work']:.0f} "
        f"does not beat best monolithic {mixed['mono_best_virtual']:.0f}"
    )

    # Headline 2 — the coordinator beats the naive baseline's sweep count
    # on the deep chain (Seidel sweeps propagate through every bridge;
    # the baseline's default Jacobi mode crosses one bridge per sweep).
    chain = data["rcblocks6"]
    seidel = chain["wtm"]["seidel"]
    assert seidel["outer_iterations"] < chain["wr_sweeps"], (
        f"rcblocks6: wtm seidel took {seidel['outer_iterations']} outer "
        f"iterations vs baseline's {chain['wr_sweeps']} sweeps"
    )


def test_table_r13_partition(run_once):
    result = run_once(table_r13)
    _check_rows(result.data)
    # The full table carries the agreement classification for every row.
    assert all("tier" in cells for cells in result.data.values())


def test_table_r13_smoke(run_once):
    result = run_once(table_r13_smoke)
    _check_rows(result.data)
