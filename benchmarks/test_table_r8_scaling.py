"""Table R8 (extension): size independence of time-axis parallelism."""

from repro.bench.experiments import table_r8


def test_table_r8_scaling(run_once):
    result = run_once(table_r8)
    for family in (("invchain4", "invchain16"), ("grid4x4", "grid8x8")):
        small, large = (result.data[n]["backward"] for n in family)
        # 4x size change moves speedup by well under the gain itself
        assert abs(large - small) < 0.25, f"{family}: {small:.2f} -> {large:.2f}"
    assert all(c["backward"] >= 0.95 for c in result.data.values())
