"""Table R9: solve-cost ablation of the factorisation-reuse fast path.

Reproduction claim (extension, no paper counterpart): reusing LU
factorisations across Newton iterations and timepoints — together with
static linear-device stamps and in-place Jacobian assembly — cuts
sequential transient wall time on the registry circuits, by >=25% on at
least two of them, without moving accepted waveforms beyond solver
tolerance.
"""

from repro.bench.experiments import table_r9, table_r9_smoke

#: Relative waveform deviation allowed between reuse-on and reuse-off
#: runs; generous vs the measured worst case (~7e-3 on lcosc) but far
#: below anything resembling a wrong waveform.
DEV_TOL = 2e-2


def _check_rows(data, min_big_wins):
    big_wins = 0
    for name, cells in data.items():
        assert cells["reuse_hits"] > 0, f"{name}: fast path never reused factors"
        assert cells["factors_on"] < cells["factors_off"], (
            f"{name}: reuse did not reduce factorisation count"
        )
        assert cells["worst_rel_dev"] <= DEV_TOL, (
            f"{name}: waveform deviation {cells['worst_rel_dev']:.2e} "
            f"exceeds {DEV_TOL:.0e}"
        )
        if cells["reduction"] >= 0.25:
            big_wins += 1
    assert big_wins >= min_big_wins, (
        f"only {big_wins} circuit(s) reached a 25% wall-time reduction"
    )


def test_table_r9_solvecost(run_once):
    result = run_once(table_r9)
    _check_rows(result.data, min_big_wins=2)


def test_table_r9_smoke(run_once):
    result = run_once(table_r9_smoke)
    # The smoke subset carries one linear circuit (rcladder20, where the
    # fast path is bit-exact and large) and one stiff nonlinear circuit
    # (rectifier, where the stall guard must contain the damage).
    _check_rows(result.data, min_big_wins=1)
    assert result.data["rcladder20"]["worst_rel_dev"] == 0.0
