"""Shared helpers for the bench harness.

Every bench runs its experiment exactly once (rounds=1): these are
simulation-campaign benchmarks whose interesting output is the table
itself, not a microsecond timing distribution.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment function once under pytest-benchmark and print it."""

    def runner(func, *args, **kwargs):
        result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
        print()
        print(result.text)
        return result

    return runner
