"""Shared helpers for the bench harness.

Every bench runs its experiment exactly once (rounds=1): these are
simulation-campaign benchmarks whose interesting output is the table
itself, not a microsecond timing distribution.

Each run executes under a process-global :class:`repro.instrument.Recorder`
(counters/histograms only — event capture off so campaigns stay cheap),
and the collected metrics are dumped to ``BENCH_METRICS_<exp_id>.json``
next to this file: iteration and reject counts per figure, not just the
rendered table.
"""

import json
from pathlib import Path

import pytest

from repro.instrument import Recorder, use_recorder

_METRICS_DIR = Path(__file__).parent


def _dump_metrics(result, recorder: Recorder) -> None:
    exp_id = getattr(result, "exp_id", None)
    if not exp_id:
        return
    snapshot = recorder.snapshot()
    payload = {
        "exp_id": exp_id,
        "title": getattr(result, "title", ""),
        "counters": snapshot["counters"],
        "histograms": snapshot["histograms"],
    }
    path = _METRICS_DIR / f"BENCH_METRICS_{exp_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def run_once(benchmark):
    """Run an experiment function once under pytest-benchmark and print it."""

    def runner(func, *args, **kwargs):
        recorder = Recorder(capture_events=False)
        with use_recorder(recorder):
            result = benchmark.pedantic(
                func, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
        print()
        print(result.text)
        _dump_metrics(result, recorder)
        return result

    return runner
