"""Fig R1: speedup vs thread count per scheme (coarse-grained scaling)."""

from repro.bench.experiments import fig_r1


def test_fig_r1_scaling(run_once):
    result = run_once(fig_r1)
    for series, values in result.data.items():
        assert abs(values[1] - 1.0) < 0.05, (
            f"{series}: single-thread pipelining must match sequential, got {values[1]:.3f}"
        )
        assert values[4] >= values[1] * 0.95, f"{series}: scaling regressed at 4 threads"
