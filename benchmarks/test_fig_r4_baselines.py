"""Fig R4: WavePipe vs the two conventional parallel approaches.

Shape claims from the abstract: (a) fine-grained intra-iteration
parallelism saturates with thread count (Amdahl); (b) waveform relaxation
needs many sweeps / fails to converge on feedback circuits, while
WavePipe (Table R5) matches direct-method accuracy by construction.
"""

from repro.bench.experiments import fig_r4


def test_fig_r4_baselines(run_once):
    result = run_once(fig_r4)
    fine = result.data["fine_grained"]
    # Amdahl saturation: the 8 -> 16 thread gain is well below 2x, and
    # parallel efficiency at 16 threads has collapsed below 60%.
    assert fine[16] / fine[8] < 1.6, "fine-grained baseline failed to saturate"
    assert fine[16] / 16.0 < 0.6, "fine-grained efficiency did not collapse"
    # WR diverges (or at best crawls) on the feedback circuit.
    assert not result.data["wr"]["ring5"]["converged"]
