"""Table R7 (extension): speedup sensitivity to integration tolerance."""

from repro.bench.experiments import table_r7


def test_table_r7_tolerance(run_once):
    result = run_once(table_r7)
    loosest = result.data[1e-2]
    tightest = result.data[3e-4]
    # looser tolerance -> more Newton iterations per solve
    assert loosest["iters_per_solve"] > tightest["iters_per_solve"]
    # and no configuration regresses badly below sequential
    for cells in result.data.values():
        for scheme in ("backward", "forward", "combined"):
            assert cells[scheme] >= 0.9
