"""Fig R2: accepted-step profile, sequential vs backward pipelining.

Shape claim: WavePipe covers the same window in fewer stages than the
sequential run has points (that is the whole speedup mechanism), while
accepting a comparable number of points.
"""

from repro.bench.experiments import fig_r2


def test_fig_r2_stepsizes(run_once):
    result = run_once(fig_r2)
    assert result.data["pipe_stages"] < result.data["seq_points"]
    assert result.data["pipe_points"] >= 0.8 * result.data["seq_points"]
