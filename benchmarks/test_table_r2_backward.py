"""Table R2: backward pipelining speedup vs the sequential baseline.

Reproduction claim (shape, not absolute numbers): backward pipelining is
never slower than sequential on aggregate and exploits extra threads on
ratio-limited workloads.
"""

from repro.bench.experiments import table_r2


def test_table_r2_backward(run_once):
    result = run_once(table_r2)
    geo = result.data["geomean"]
    assert geo[2] >= 1.0, f"2-thread backward geomean {geo[2]:.2f} below 1.0"
    assert geo[4] >= geo[2] * 0.95, "speedup should not collapse with more threads"
    # At least one circuit shows a clearly material gain.
    best = max(
        cells[4] for name, cells in result.data.items() if name != "geomean"
    )
    assert best >= 1.10, f"best backward speedup only {best:.2f}"
