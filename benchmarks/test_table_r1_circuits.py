"""Table R1: benchmark circuit statistics (the evaluation's workload table)."""

from repro.bench.experiments import table_r1
from repro.circuits.registry import BENCHMARKS


def test_table_r1_circuits(run_once):
    result = run_once(table_r1)
    assert set(result.data) == set(BENCHMARKS)
    kinds = {row["kind"] for row in result.data.values()}
    # The paper targets "general analog and digital ICs".
    assert {"analog", "digital", "interconnect"} <= kinds
