"""Fig R5 (extension): robustness to synchronisation overhead."""

from repro.bench.experiments import fig_r5


def test_fig_r5_sync(run_once):
    result = run_once(fig_r5)
    # fine-grained starts ahead but degrades faster: the advantage ratio
    # wavepipe/fine-grained must grow monotonically with sync cost, and
    # wavepipe must be ahead once sync reaches one Newton iteration.
    fractions = sorted(result.data)
    ratios = [
        result.data[f]["wavepipe"] / result.data[f]["fine_grained"]
        for f in fractions
    ]
    assert all(b >= a * 0.99 for a, b in zip(ratios, ratios[1:]))
    assert result.data[1.0]["wavepipe"] > result.data[1.0]["fine_grained"]
