"""Table R11: ensemble lockstep campaigns vs per-job process pool.

Reproduction claim (extension, no paper counterpart): Monte Carlo jobs
that differ only in component values can share one transient solve — the
vectorized ensemble engine batches K variants through one adaptive grid,
one Newton history and one cached symbolic factorisation — and that
sharing beats running the same campaign as independent process-pool jobs
in **both** virtual-clock work and wall time, while every variant stays
within the ``loose`` (1e-3) rung of the verify tolerance ladder against
its own standalone sequential run.

Unlike the Table R10 wall-clock assertions, the ensemble's advantages do
not depend on physical core count — the batching amortises Python/
assembly overhead inside one process — so the speedup checks run
unconditionally.
"""

from repro.bench.experiments import table_r11, table_r11_smoke

#: Every variant must clear the loose rung (acceptance criterion).
LOOSE = 1e-3


def _check_rows(data):
    for key, cells in data.items():
        assert cells["pool_passed"], f"{key}: process-pool campaign had failed jobs"
        assert cells["worst_rel_dev"] <= LOOSE, (
            f"{key}: worst variant deviation {cells['worst_rel_dev']:.3e} "
            f"exceeds the loose rung ({LOOSE:g})"
        )
        assert cells["work_ratio"] > 1.0, (
            f"{key}: ensemble used more virtual-clock work than the pool "
            f"({cells['ens_work_units']:.0f} vs {cells['pool_work_units']:.0f})"
        )
        assert cells["wall_speedup"] > 1.0, (
            f"{key}: ensemble was not faster than the pool "
            f"({cells['ens_wall_seconds']:.2f}s vs "
            f"{cells['pool_wall_seconds']:.2f}s)"
        )


def test_table_r11_ensemble(run_once):
    result = run_once(table_r11)
    _check_rows(result.data)


def test_table_r11_smoke(run_once):
    result = run_once(table_r11_smoke)
    _check_rows(result.data)
