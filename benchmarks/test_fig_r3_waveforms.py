"""Fig R3: waveform overlay on the LC oscillator.

Shape claim: the pipelined run reproduces the oscillation — frequency
within 1% of sequential (pointwise voltage deviation is phase-sensitive
and therefore not the right oscillator metric; frequency is).
"""

from repro.bench.experiments import fig_r3


def test_fig_r3_waveforms(run_once):
    result = run_once(fig_r3)
    f_seq = result.data["seq_frequency"]
    f_pipe = result.data["pipe_frequency"]
    assert f_seq is not None and f_pipe is not None, "oscillator did not oscillate"
    assert abs(f_pipe - f_seq) / f_seq < 0.01
