"""Table R3: forward (predictive) pipelining speedup vs sequential.

Shape claim: forward pipelining helps where Newton solves are expensive
and degrades gracefully (to ~1.0, never a large slowdown) where a solve
is too cheap for speculation to pay.
"""

from repro.bench.experiments import table_r3


def test_table_r3_forward(run_once):
    result = run_once(table_r3)
    geo = result.data["geomean"]
    assert geo[2] >= 0.95, f"forward geomean {geo[2]:.2f} regressed below 0.95"
    best = max(
        cells[2] for name, cells in result.data.items() if name != "geomean"
    )
    assert best >= 1.05, f"forward never paid off anywhere (best {best:.2f})"
