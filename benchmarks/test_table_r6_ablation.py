"""Table R6: ablation of the backward scheduler's design choices."""

from repro.bench.experiments import table_r6


def test_table_r6_ablation(run_once):
    result = run_once(table_r6)
    default = result.data["default"]["speedup"]
    no_guard = result.data["no guard"]["speedup"]
    assert default >= 1.0
    # The guard is the rejection-salvage mechanism; dropping it should not help.
    assert no_guard <= default * 1.05
