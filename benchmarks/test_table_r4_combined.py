"""Table R4: combined backward+forward speedup vs sequential.

Shape claim: the combined scheme adapts per-regime and matches or beats
the better single scheme on aggregate.
"""

from repro.bench.experiments import table_r2, table_r4, table_r4_smoke


def test_table_r4_combined(run_once):
    result = run_once(table_r4)
    geo = result.data["geomean"]
    assert geo[3] >= 1.0
    assert geo[4] >= 1.0


def test_table_r4_smoke(run_once):
    # Feeds the perf gate's speculation-benefit channels
    # (speculate.successes, pipeline.stages) via its metrics dump.
    result = run_once(table_r4_smoke)
    assert result.data["geomean"][3] >= 1.0
