"""Table R4: combined backward+forward speedup vs sequential.

Shape claim: the combined scheme adapts per-regime and matches or beats
the better single scheme on aggregate.
"""

from repro.bench.experiments import table_r2, table_r4


def test_table_r4_combined(run_once):
    result = run_once(table_r4)
    geo = result.data["geomean"]
    assert geo[3] >= 1.0
    assert geo[4] >= 1.0
