"""Interconnect workload: power-grid IR-droop analysis under WavePipe.

A power-delivery mesh with switching current loads is the canonical
ratio-limited workload: every load edge collapses the time step, and the
quiet settling between edges lets it ramp back up — exactly the regime
backward pipelining converts idle cores into. This example measures the
droop (the signal a power-integrity engineer wants) and shows how the
stage structure of the pipelined run compresses the sequential point
sequence.

Run with::

    python examples/power_grid_wavepipe.py
"""

import numpy as np

from repro import simulate
from repro.bench.tables import render_series, render_table
from repro.circuits.interconnect import rc_grid
from repro.mna.compiler import compile_circuit


def main() -> None:
    compiled = compile_circuit(rc_grid(nx=6, ny=6))
    tstop = 40e-9
    print(f"power grid: {compiled.n} unknowns, simulating {tstop*1e9:.0f} ns\n")

    seq = simulate(compiled, analysis="transient", tstop=tstop)
    pipe = simulate(compiled, analysis="wavepipe", tstop=tstop, scheme="backward", threads=4)

    # --- the engineering answer: worst-case droop per corner ---------------
    rows = []
    for node in ("p_5_5", "p_3_5", "p_0_5", "p_5_0"):
        w_seq = seq.waveforms.voltage(node)
        w_pipe = pipe.waveforms.voltage(node)
        rows.append(
            [
                node,
                f"{(1.8 - w_seq.values.min())*1e3:.1f} mV",
                f"{(1.8 - w_pipe.values.min())*1e3:.1f} mV",
                f"{np.abs(w_seq.at(w_pipe.times) - w_pipe.values).max()*1e3:.2f} mV",
            ]
        )
    print(
        render_table(
            ["node", "droop (sequential)", "droop (wavepipe)", "max |dv|"],
            rows,
            title="Worst-case IR droop",
        )
    )

    # --- the mechanism: stage compression ----------------------------------
    stats = pipe.stats
    print(
        f"\nsequential solves {seq.stats.accepted_points} points one at a time; "
        f"backward x4 computed {stats.accepted_points} points in "
        f"{stats.clock.stages} pipeline stages "
        f"(mean width {stats.clock.mean_width:.2f}, peak {stats.clock.peak_width})."
    )
    print(
        f"virtual speedup: {seq.stats.total_work / stats.virtual_total:.2f}x, "
        f"wasted speculative solves: {stats.wasted_solves}"
    )

    # --- droop waveform, both engines overlaid -----------------------------
    grid = np.linspace(0, tstop, 110)
    print()
    print(
        render_series(
            grid * 1e9,
            {
                "sequential": seq.waveforms.voltage("p_5_5").at(grid),
                "wavepipe": pipe.waveforms.voltage("p_5_5").at(grid),
            },
            title="v(p_5_5): far-corner supply voltage (x axis in ns)",
            height=12,
        )
    )


if __name__ == "__main__":
    main()
