"""Digital workload study: CMOS ring oscillators under WavePipe.

Reproduces in miniature what the paper's evaluation does for digital ICs:
sweep ring-oscillator sizes, report the oscillation each engine computes
(frequency must match — the accuracy claim) and the speedup of every
pipelining scheme (the performance claim).

Run with::

    python examples/ring_oscillator_study.py
"""

from repro import compare_with_sequential, simulate
from repro.bench.tables import render_table
from repro.circuits.digital import ring_oscillator
from repro.mna.compiler import compile_circuit


def study_ring(stages: int, tstop: float) -> list:
    compiled = compile_circuit(ring_oscillator(stages=stages))
    seq = simulate(compiled, analysis="transient", tstop=tstop)
    signal = seq.waveforms.voltage("n0")
    settled = signal.slice(tstop / 3, tstop)
    f_seq = settled.frequency()

    row = [f"ring{stages}", compiled.n, seq.stats.accepted_points,
           f"{f_seq/1e6:.1f} MHz" if f_seq else "n/a"]
    for scheme, threads in (("backward", 2), ("forward", 2), ("combined", 4)):
        report = compare_with_sequential(
            compiled, tstop, scheme=scheme, threads=threads
        )
        pipe_signal = report.pipelined.waveforms.voltage("n0").slice(tstop / 3, tstop)
        f_pipe = pipe_signal.frequency()
        freq_error = abs(f_pipe - f_seq) / f_seq if f_seq and f_pipe else float("nan")
        row.append(f"{report.speedup:.2f} ({freq_error*100:.2f}%)")
    return row


def main() -> None:
    print("CMOS ring oscillators: WavePipe speedup and frequency fidelity")
    print("(speedup cells show 'speedup (frequency error vs sequential)')\n")
    rows = [
        study_ring(3, 20e-9),
        study_ring(5, 30e-9),
        study_ring(7, 40e-9),
    ]
    print(
        render_table(
            ["circuit", "unknowns", "seq points", "f_osc",
             "backward x2", "forward x2", "combined x4"],
            rows,
        )
    )
    print(
        "\nNote how the oscillation frequency — the quantity a designer "
        "reads off this simulation — is preserved to a fraction of a "
        "percent by every scheme: pipelined points pass exactly the same "
        "LTE acceptance test as sequential ones."
    )


if __name__ == "__main__":
    main()
