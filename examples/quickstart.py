"""Quickstart: build a circuit, simulate it, pipeline it.

Covers the three entry points a new user needs:

1. the programmatic :class:`repro.Circuit` builder,
2. the unified :func:`repro.simulate` facade (here: sequential transient),
3. WavePipe parallel transient (``simulate(..., analysis="wavepipe")``)
   and the speedup/accuracy report against the sequential baseline.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import Circuit, Pulse, compare_with_sequential, simulate


def build_lowpass() -> Circuit:
    """1 kOhm / 1 nF low-pass filter driven by a delayed voltage step."""
    circuit = Circuit("rc-lowpass")
    circuit.add_vsource(
        "V1", "in", "0", Pulse(0.0, 1.0, delay=1e-6, rise=1e-9, width=1e-3)
    )
    circuit.add_resistor("R1", "in", "out", "1k")  # SPICE value strings work
    circuit.add_capacitor("C1", "out", "0", "1n")
    return circuit


def main() -> None:
    circuit = build_lowpass()

    # --- sequential transient -------------------------------------------------
    result = simulate(circuit, analysis="transient", tstop=8e-6)
    out = result.waveforms.voltage("out")
    print(f"sequential: {result.stats.accepted_points} accepted points, "
          f"{result.stats.rejected_points} rejected, "
          f"{result.stats.newton_iterations} Newton iterations")

    # check against the analytic step response (tau = RC = 1 us)
    t = np.linspace(1.5e-6, 7.5e-6, 30)
    analytic = 1.0 - np.exp(-(t - 1e-6) / 1e-6)
    error = np.abs(out.at(t) - analytic).max()
    print(f"max deviation from analytic step response: {error:.2e} V")

    print("\n   time        v(out)   analytic")
    for tk in np.linspace(1e-6, 8e-6, 8):
        ana = 1.0 - np.exp(-max(tk - 1e-6, 0.0) / 1e-6)
        print(f"   {tk*1e6:5.2f} us    {out.at(tk):6.4f}   {ana:6.4f}")

    # --- WavePipe parallel transient -------------------------------------------
    print("\nWavePipe (parallel time-stepping) vs sequential:")
    for scheme, threads in (("backward", 2), ("forward", 2), ("combined", 4)):
        report = compare_with_sequential(
            circuit, tstop=8e-6, scheme=scheme, threads=threads
        )
        print(f"  {report.summary()}")

    print(
        "\nSpeedups are virtual-clock measurements: each pipeline stage is "
        "charged the cost of its most expensive concurrent Newton solve, "
        "replaying the schedule an ideal shared-memory machine would run."
    )


if __name__ == "__main__":
    main()
