"""SPICE netlist front-end tour: parse a deck, run every analysis.

Shows the deck-driven workflow: ``.param`` expressions, ``.model`` cards,
subcircuits, ``.dc`` / ``.tran`` analyses and options — everything the
command line (``python -m repro deck.cir``) does, but from the API, plus
a small-signal AC sweep the deck format doesn't carry.

Run with::

    python examples/netlist_tour.py
"""

import numpy as np

from repro import parse_netlist, simulate
from repro.bench.tables import render_table
from repro.netlist.parser import DcCommand, TranCommand

DECK = """Buffered RC with a CMOS output stage
* parameters and models -----------------------------------------------
.param vdd=3 rin={10k/2} cin=2n
.model mn nmos vto=0.7 kp=200u lambda=0.05
.model mp pmos vto=0.7 kp=100u lambda=0.05

* a reusable inverter --------------------------------------------------
.subckt inv in out vdd
MP out in vdd vdd mp w=4u l=1u
MN out in 0 0 mn w=2u l=1u
.ends

* the circuit ----------------------------------------------------------
VDD vdd 0 {vdd}
VIN src 0 PULSE(0 {vdd} 2u 10n 10n 40u 80u)
R1 src mid {rin}
C1 mid 0 {cin}
X1 mid inv1 vdd inv
X2 inv1 out vdd inv
CL out 0 10p

.dc VIN 0 3 0.25
.tran 0.1u 30u
.end
"""


def main() -> None:
    netlist = parse_netlist(DECK)
    print(f"parsed: {netlist.title!r}")
    print(f"  components: {len(netlist.circuit)}  "
          f"models: {sorted(netlist.models)}  "
          f"subcircuits: {sorted(netlist.subcircuits)}")

    for command in netlist.analyses:
        if isinstance(command, DcCommand):
            values = np.arange(command.start, command.stop + command.step / 2, command.step)
            sweep = simulate(
                netlist.circuit, analysis="dc", source=command.source, values=values
            )
            rows = [
                [f"{v:.2f}", f"{sweep.curves.voltage('mid').values[k]:.3f}",
                 f"{sweep.curves.voltage('out').values[k]:.3f}"]
                for k, v in enumerate(values)
                if k % 3 == 0
            ]
            print()
            print(render_table(
                ["VIN", "v(mid)", "v(out)"], rows,
                title="DC transfer (buffered: out snaps rail-to-rail)",
            ))
        elif isinstance(command, TranCommand):
            result = simulate(
                netlist.circuit, analysis="transient", tstop=command.tstop,
                tstep=command.tstep, options=netlist.options,
            )
            mid = result.waveforms.voltage("mid")
            out = result.waveforms.voltage("out")
            # RC delay to threshold vs buffered edge
            t_mid = mid.crossings(1.5, "rise")
            t_out = out.crossings(1.5, "rise")
            print(f"\ntransient: {result.stats.accepted_points} points")
            if t_mid.size and t_out.size:
                print(f"  RC node crosses vdd/2 at {t_mid[0]*1e6:.2f} us "
                      f"(analytic: {2 + 10e-3*np.log(2)*1e3:.2f} us)")
                print(f"  buffered output follows at {t_out[0]*1e6:.2f} us "
                      f"(two gate delays later)")

            pipe = simulate(
                netlist.circuit, analysis="wavepipe", tstop=command.tstop,
                scheme="combined", threads=3,
                tstep=command.tstep, options=netlist.options,
            )
            shift = abs(pipe.waveforms.voltage("out").crossings(1.5, "rise")[0] - t_out[0])
            print(f"  wavepipe combined x3: {pipe.stats.accepted_points} points, "
                  f"output edge within {shift*1e9:.3f} ns of sequential")

    # AC analysis of the passive front end (not a deck card — API only)
    ac = simulate(netlist.circuit, analysis="ac", source="VIN",
                  freqs=np.logspace(2, 6, 40))
    fc = ac.corner_frequency("v(mid)")
    print(f"\nAC: RC front-end corner at {fc/1e3:.2f} kHz "
          f"(analytic {1/(2*np.pi*5e3*2e-9)/1e3:.2f} kHz)")


if __name__ == "__main__":
    main()
