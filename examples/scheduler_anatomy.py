"""Inside the WavePipe scheduler: what each adaptive mechanism contributes.

Instruments one backward-pipelined run to show the decisions DESIGN.md
describes — guard insurance, ramp-chain extension, rejection salvage —
and then switches each mechanism off to quantify its contribution (a
live, single-circuit version of the Table R6 ablation).

Run with::

    python examples/scheduler_anatomy.py
"""

from repro import SimOptions, compare_with_sequential, simulate
from repro.bench.tables import render_table
from repro.circuits.digital import inverter_chain
from repro.core.backward import BackwardPipeline
from repro.mna.compiler import compile_circuit


def main() -> None:
    compiled = compile_circuit(inverter_chain(stages=8))
    tstop = 50e-9

    # --- the sequential baseline's pain points -----------------------------
    seq = simulate(compiled, analysis="transient", tstop=tstop)
    solves = seq.stats.accepted_points + seq.stats.rejected_points
    print("sequential baseline:")
    print(f"  {seq.stats.accepted_points} accepted points")
    print(f"  {seq.stats.rejected_points} LTE rejections "
          f"({100 * seq.stats.rejected_points / solves:.0f}% of solves wasted)")
    print(f"  {seq.stats.newton_iterations / solves:.2f} Newton iterations/solve")

    # --- one instrumented pipelined run ------------------------------------
    engine = BackwardPipeline(compiled, tstop, threads=4)
    result = engine.run()
    stats = result.stats
    print("\nbackward pipelining, 4 threads:")
    print(f"  {stats.clock.stages} stages for {stats.accepted_points} points "
          f"(mean width {stats.clock.mean_width:.2f})")
    print(f"  guard points scheduled: "
          f"{stats.extra.get('guard_salvages', 0) + stats.extra.get('guards_unused', 0)}"
          f" — {stats.extra.get('guard_salvages', 0)} salvaged a failed stage, "
          f"{stats.extra.get('guards_unused', 0)} were unused insurance")
    print(f"  wasted solves (discarded chain/guard work): {stats.wasted_solves}")
    print(f"  virtual speedup: {seq.stats.total_work / stats.virtual_total:.2f}x")

    # --- switch mechanisms off one at a time --------------------------------
    variants = {
        "full scheduler (default)": SimOptions(),
        "no rejection guard": SimOptions(backward_guard_fraction=0.0),
        "no ratio bound to exploit (r_max=1.05)": SimOptions(step_ratio_max=1.05),
        "blind chains (no headroom gate)": SimOptions(chain_headroom_min=0.0),
        "predictor-seeded Newton": SimOptions(newton_guess="predictor"),
    }
    rows = []
    for label, options in variants.items():
        report = compare_with_sequential(
            compile_circuit(inverter_chain(stages=8), options),
            tstop, scheme="backward", threads=4, options=options,
        )
        ps = report.pipelined.stats
        rows.append([
            label,
            f"{report.speedup:.2f}",
            ps.extra.get("guard_salvages", 0),
            ps.wasted_solves,
        ])
    print()
    print(render_table(
        ["variant", "speedup", "salvages", "wasted"],
        rows,
        title="What each mechanism is worth (backward x4, inverter chain)",
    ))
    print(
        "\nReading the table: removing the guard forfeits rejection salvage "
        "(the dominant mechanism on this rejection-heavy digital workload); "
        "r_max=1.05 changes the *baseline* too — almost no ramp conservatism "
        "left to exploit, but many more rejected steps for the guard to "
        "rescue. The headroom gate and the Newton-guess policy barely move "
        "THIS circuit because its chains rarely fire; their effects live on "
        "oscillatory workloads (rlcline8) and in the tolerance sweep — see "
        "Table R6/R7 in EXPERIMENTS.md for the cross-circuit picture."
    )


if __name__ == "__main__":
    main()
