"""Analog workload: Gilbert-cell mixer down-conversion under WavePipe.

The double-balanced mixer is the evaluation's strongly nonlinear analog
block: eight BJT junctions iterating per Newton solve. That makes it both
a convergence stress test and forward pipelining's best case (expensive
solves leave real work for speculation to pre-pay). The example verifies
the mixer *mixes* — the differential output contains the LO±RF products —
and reports per-scheme speedups.

Run with::

    python examples/mixer_wavepipe.py
"""

import numpy as np

from repro import compare_with_sequential, simulate
from repro.circuits.analog import gilbert_mixer
from repro.mna.compiler import compile_circuit


def tone_amplitude(times, values, freq):
    """Single-bin DFT magnitude at *freq* (uniform resample first)."""
    grid = np.linspace(times[0], times[-1], 4096)
    resampled = np.interp(grid, times, values)
    resampled = resampled - resampled.mean()
    phase = 2j * np.pi * freq * grid
    return 2.0 * abs(np.mean(resampled * np.exp(-phase)))


def main() -> None:
    rf, lo = 10e6, 100e6
    compiled = compile_circuit(gilbert_mixer(rf_freq=rf, lo_freq=lo))
    tstop = 0.4e-6  # four full IF (90 MHz) beats, 4 RF periods
    print(f"Gilbert mixer: {compiled.n} unknowns, RF={rf/1e6:.0f} MHz, "
          f"LO={lo/1e6:.0f} MHz, window {tstop*1e6:.2f} us\n")

    from repro.utils.options import SimOptions

    options = SimOptions(max_step=1e-9)
    seq = simulate(compiled, analysis="transient", tstop=tstop, options=options)
    diff = seq.waveforms.voltage("outp").values - seq.waveforms.voltage("outm").values
    times = seq.times

    print("differential output spectrum (single-bin DFT):")
    for label, freq in (
        ("LO - RF (IF, wanted)", lo - rf),
        ("LO + RF (image)", lo + rf),
        ("RF leakage", rf),
        ("LO leakage", lo),
    ):
        amp = tone_amplitude(times, diff, freq)
        print(f"  {label:22s} {freq/1e6:6.1f} MHz : {amp*1e3:8.2f} mV")

    if_amp = tone_amplitude(times, diff, lo - rf)
    rf_leak = tone_amplitude(times, diff, rf)
    print(f"\nIF product is {if_amp/max(rf_leak, 1e-12):.0f}x the RF leakage "
          "(double-balanced cancellation at work)")

    print("\nWavePipe on a junction-heavy analog netlist "
          f"(~{seq.stats.newton_iterations/(seq.stats.accepted_points + seq.stats.rejected_points):.1f} Newton iterations/solve):")
    for scheme, threads in (("backward", 2), ("forward", 2), ("combined", 4)):
        report = compare_with_sequential(
            compiled, tstop, scheme=scheme, threads=threads, options=options,
            signals=["v(outp)", "v(outm)"],
        )
        print(f"  {report.summary()}")


if __name__ == "__main__":
    main()
